//! The informed-list `I(p)` of the `ears` protocol.
//!
//! `I(p)` is a set of pairs `⟨r, q⟩` meaning "process `p` knows that rumor
//! `r` has been sent to process `q` by some process" (paper, Section 3.1).
//! From `V(p)` and `I(p)` the process derives `L(p)`, the set of processes it
//! cannot ascertain have been sent every rumor in `V(p)`; the protocol keeps
//! gossiping while `L(p)` is non-empty.

use std::borrow::Cow;
use std::fmt;

use agossip_sim::ProcessId;

use crate::bits::AdaptiveSet;
use crate::rumor::RumorSet;

/// The set of `⟨rumor origin, target⟩` pairs a process knows about.
///
/// Rumors are identified by their origin (each origin has exactly one rumor),
/// so a pair `(r, q)` is stored as `(r.origin, q)` — a point in the fixed
/// `n × n` universe. The storage is one target set per origin row, and each
/// row is *adaptive* (see `crate::bits::AdaptiveSet`): a sorted sparse id
/// list while the row is small — so an early-phase process at `n = 65 536`
/// holds a few dozen ids per known rumor instead of `Θ(n)` bitmap words —
/// promoting per-row to the word-packed form past the crossover, where
/// `contains` is a bit test, [`InformedList::union`] is a row-by-row
/// word-wise OR, and the coverage queries that `ears`/`sears` evaluate every
/// local step reduce to AND-ing the rows of the known rumors. Iteration
/// yields pairs in ascending `(origin, target)` order in either
/// representation, exactly as the historical
/// `BTreeSet<(ProcessId, ProcessId)>` did.
#[derive(Clone, Default)]
pub struct InformedList {
    /// `rows[origin]` is the set of targets covered for that origin's rumor.
    rows: Vec<AdaptiveSet>,
    len: usize,
}

impl InformedList {
    /// Creates an empty informed-list.
    pub fn new() -> Self {
        Self::default()
    }

    fn row_mut(&mut self, origin: usize) -> &mut AdaptiveSet {
        if self.rows.len() <= origin {
            self.rows.resize_with(origin + 1, AdaptiveSet::new);
        }
        &mut self.rows[origin]
    }

    /// Forces every row into the dense representation. A hook for the
    /// representation-differential tests; never needed in protocol code.
    #[doc(hidden)]
    pub fn force_dense(&mut self) {
        for row in &mut self.rows {
            row.promote();
        }
    }

    /// Records that the rumor originating at `rumor_origin` has been sent to
    /// `target`. Returns true if the pair is new.
    pub fn insert(&mut self, rumor_origin: ProcessId, target: ProcessId) -> bool {
        let fresh = self.row_mut(rumor_origin.index()).insert(target.index());
        self.len += fresh as usize;
        fresh
    }

    /// Records that every rumor in `rumors` has been sent to `target`.
    pub fn insert_all(&mut self, rumors: &RumorSet, target: ProcessId) {
        for origin in rumors.origins() {
            self.insert(origin, target);
        }
    }

    /// True if the list records that `rumor_origin`'s rumor was sent to
    /// `target`.
    pub fn contains(&self, rumor_origin: ProcessId, target: ProcessId) -> bool {
        self.rows
            .get(rumor_origin.index())
            .is_some_and(|row| row.contains(target.index()))
    }

    /// Merges another informed-list into this one. Returns the number of new
    /// pairs.
    pub fn union(&mut self, other: &InformedList) -> usize {
        let mut added = 0usize;
        for (origin, row) in other.rows.iter().enumerate() {
            if row.is_empty() {
                continue;
            }
            added += self.row_mut(origin).union(row);
        }
        self.len += added;
        added
    }

    /// Merges a borrowed wire view (see [`crate::codec_view`]) into `self`,
    /// producing exactly the contents that decoding the view's frame and
    /// calling [`InformedList::union`] would — without materializing the
    /// sender's list. Dense rows are OR-ed straight into the matching target
    /// rows. Returns the number of new pairs.
    pub fn union_view(&mut self, view: &crate::codec_view::InformedListView<'_>) -> usize {
        use crate::codec_view::InformedViewRepr;
        match view.repr() {
            InformedViewRepr::Sparse { .. } => {
                let mut added = 0usize;
                for (origin, target) in view.iter() {
                    added += self.insert(origin, target) as usize;
                }
                added
            }
            InformedViewRepr::Dense { .. } => {
                let mut added = 0usize;
                for row in view.rows() {
                    added += self.row_mut(row.origin).or_le_words(row.words);
                }
                self.len += added;
                added
            }
        }
    }

    /// True if `self` records every pair of the borrowed wire view — the
    /// same answer [`InformedList::is_superset_of`] gives for the decoded
    /// frame, with no allocation.
    pub fn is_superset_of_view(&self, view: &crate::codec_view::InformedListView<'_>) -> bool {
        use crate::codec_view::InformedViewRepr;
        match view.repr() {
            InformedViewRepr::Sparse { .. } => view
                .iter()
                .all(|(origin, target)| self.contains(origin, target)),
            InformedViewRepr::Dense { .. } => {
                view.rows().all(|row| match self.rows.get(row.origin) {
                    Some(own) => own.is_superset_of_le_words(row.words),
                    None => row.words.iter().all(|&b| b == 0),
                })
            }
        }
    }

    /// True if every pair of `other` is already recorded in `self`.
    pub fn is_superset_of(&self, other: &InformedList) -> bool {
        other
            .rows
            .iter()
            .enumerate()
            .all(|(origin, row)| match self.rows.get(origin) {
                Some(own) => own.is_superset_of(row),
                None => row.is_empty(),
            })
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no pair is recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// AND-accumulates, over every rumor in `rumors`, the target rows into a
    /// "covered" bitmask of `⌈n/64⌉` words: bit `q` survives iff every rumor
    /// has been sent to `q`. An empty rumor set covers everything vacuously.
    fn covered_mask(&self, rumors: &RumorSet, n: usize) -> Vec<u64> {
        let word_count = n.div_ceil(64);
        let mut covered = vec![u64::MAX; word_count];
        if !n.is_multiple_of(64) {
            // Mask off the bits beyond the universe in the last word.
            covered[word_count - 1] = (1u64 << (n % 64)) - 1;
        }
        for origin in rumors.origins() {
            match self.rows.get(origin.index()) {
                Some(row) => row.and_into(&mut covered),
                None => {
                    covered.fill(0);
                    break;
                }
            }
            if covered.iter().all(|&w| w == 0) {
                break;
            }
        }
        covered
    }

    /// Computes `L(p)` — the processes `q ∈ [n]` for which there exists a
    /// rumor `r ∈ rumors` with `(r, q)` not in the list (paper, Section 3.1).
    pub fn uncovered_targets(&self, rumors: &RumorSet, n: usize) -> Vec<ProcessId> {
        if rumors.is_empty() {
            return Vec::new();
        }
        let covered = self.covered_mask(rumors, n);
        ProcessId::all(n)
            .filter(|q| covered[q.index() / 64] & (1 << (q.index() % 64)) == 0)
            .collect()
    }

    /// True if every process in `[n]` is covered for every rumor in `rumors`
    /// (i.e. `L(p) = ∅`).
    pub fn covers_all(&self, rumors: &RumorSet, n: usize) -> bool {
        if rumors.is_empty() || n == 0 {
            return true;
        }
        let covered = self.covered_mask(rumors, n);
        let full = n / 64;
        covered[..full].iter().all(|&w| w == u64::MAX)
            && (n.is_multiple_of(64) || covered[full] == (1u64 << (n % 64)) - 1)
    }

    /// The non-empty rows as `(origin, trimmed dense words)` — for the wire
    /// codec's dense section. A row's words are borrowed when it is already
    /// dense and materialized when it is sparse, so the bytes on the wire
    /// are identical whichever representation each row happens to be in.
    pub(crate) fn dense_rows(&self) -> Vec<(usize, Cow<'_, [u64]>)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| !row.is_empty())
            .map(|(origin, row)| (origin, row.to_words()))
            .collect()
    }

    /// Iterates over the pairs `(rumor origin, target)` in order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.rows.iter().enumerate().flat_map(|(origin, row)| {
            row.iter()
                .map(move |target| (ProcessId(origin), ProcessId(target)))
        })
    }
}

impl PartialEq for InformedList {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.is_superset_of(other)
    }
}

impl Eq for InformedList {}

impl fmt::Debug for InformedList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::ADAPTIVE_SPARSE_LIMIT;
    use crate::rumor::Rumor;

    fn rumors(origins: &[usize]) -> RumorSet {
        origins
            .iter()
            .map(|&o| Rumor::new(ProcessId(o), o as u64))
            .collect()
    }

    #[test]
    fn insert_and_contains() {
        let mut il = InformedList::new();
        assert!(il.is_empty());
        assert!(il.insert(ProcessId(0), ProcessId(1)));
        assert!(!il.insert(ProcessId(0), ProcessId(1)));
        assert!(il.contains(ProcessId(0), ProcessId(1)));
        assert!(!il.contains(ProcessId(1), ProcessId(0)));
        assert_eq!(il.len(), 1);
    }

    #[test]
    fn insert_all_covers_every_rumor_for_target() {
        let mut il = InformedList::new();
        let v = rumors(&[0, 1, 2]);
        il.insert_all(&v, ProcessId(3));
        assert_eq!(il.len(), 3);
        for o in 0..3 {
            assert!(il.contains(ProcessId(o), ProcessId(3)));
        }
    }

    #[test]
    fn union_merges_pairs() {
        let mut a = InformedList::new();
        a.insert(ProcessId(0), ProcessId(1));
        let mut b = InformedList::new();
        b.insert(ProcessId(0), ProcessId(1));
        b.insert(ProcessId(2), ProcessId(3));
        assert_eq!(a.union(&b), 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a.union(&b), 0);
    }

    #[test]
    fn superset_and_equality_ignore_representation() {
        let mut a = InformedList::new();
        a.insert(ProcessId(5), ProcessId(70));
        a.insert(ProcessId(0), ProcessId(0));
        let mut b = InformedList::new();
        b.insert(ProcessId(0), ProcessId(0));
        b.insert(ProcessId(5), ProcessId(70));
        assert_eq!(a, b);
        assert!(a.is_superset_of(&b));
        // Promoting one side's rows must not disturb equality either way.
        b.force_dense();
        assert_eq!(a, b);
        assert_eq!(b, a);
        b.insert(ProcessId(9), ProcessId(1));
        assert_ne!(a, b);
        assert!(b.is_superset_of(&a));
        assert!(!a.is_superset_of(&b));
    }

    #[test]
    fn uncovered_targets_matches_definition() {
        let n = 3;
        let v = rumors(&[0, 1]);
        let mut il = InformedList::new();
        // Cover everything for target 0 and 1 but only rumor 0 for target 2.
        il.insert_all(&v, ProcessId(0));
        il.insert_all(&v, ProcessId(1));
        il.insert(ProcessId(0), ProcessId(2));
        let uncovered = il.uncovered_targets(&v, n);
        assert_eq!(uncovered, vec![ProcessId(2)]);
        assert!(!il.covers_all(&v, n));
        il.insert(ProcessId(1), ProcessId(2));
        assert!(il.covers_all(&v, n));
        assert!(il.uncovered_targets(&v, n).is_empty());
    }

    #[test]
    fn empty_rumor_set_is_trivially_covered() {
        let il = InformedList::new();
        assert!(il.covers_all(&RumorSet::new(), 5));
        assert!(il.uncovered_targets(&RumorSet::new(), 5).is_empty());
    }

    #[test]
    fn unknown_rumor_row_uncovers_everything() {
        let n = 4;
        let mut il = InformedList::new();
        let v = rumors(&[0]);
        for q in ProcessId::all(n) {
            il.insert(ProcessId(0), q);
        }
        assert!(il.covers_all(&v, n));
        // A rumor with no row at all leaves every target uncovered.
        let v2 = rumors(&[0, 7]);
        assert!(!il.covers_all(&v2, n));
        assert_eq!(il.uncovered_targets(&v2, n).len(), n);
    }

    #[test]
    fn coverage_works_past_one_word_of_targets() {
        let n = 130;
        let v = rumors(&[1]);
        let mut il = InformedList::new();
        for q in ProcessId::all(n) {
            il.insert(ProcessId(1), q);
        }
        assert!(il.covers_all(&v, n));
        assert!(il.uncovered_targets(&v, n).is_empty());
        let mut partial = InformedList::new();
        for q in ProcessId::all(n) {
            if q.index() != 129 {
                partial.insert(ProcessId(1), q);
            }
        }
        assert!(!partial.covers_all(&v, n));
        assert_eq!(partial.uncovered_targets(&v, n), vec![ProcessId(129)]);
    }

    #[test]
    fn coverage_is_identical_across_row_representations() {
        // A sparse row and its force-promoted twin answer the coverage
        // queries identically (the rows here stay far below the crossover).
        let n = 200;
        let v = rumors(&[3]);
        let targets = [0usize, 64, 65, 130, 199];
        let mut sparse = InformedList::new();
        for &t in &targets {
            sparse.insert(ProcessId(3), ProcessId(t));
        }
        let mut dense = sparse.clone();
        dense.force_dense();
        assert_eq!(
            sparse.uncovered_targets(&v, n),
            dense.uncovered_targets(&v, n)
        );
        assert_eq!(sparse.covers_all(&v, n), dense.covers_all(&v, n));
        assert!(ADAPTIVE_SPARSE_LIMIT > targets.len());
    }

    #[test]
    fn new_rumor_uncovers_targets_again() {
        let n = 2;
        let mut v = rumors(&[0]);
        let mut il = InformedList::new();
        il.insert_all(&v, ProcessId(0));
        il.insert_all(&v, ProcessId(1));
        assert!(il.covers_all(&v, n));
        // Learning a new rumor re-opens L(p).
        v.insert(Rumor::new(ProcessId(1), 1));
        assert!(!il.covers_all(&v, n));
        assert_eq!(il.uncovered_targets(&v, n).len(), 2);
    }

    #[test]
    fn iter_yields_sorted_pairs() {
        let mut il = InformedList::new();
        il.insert(ProcessId(2), ProcessId(0));
        il.insert(ProcessId(0), ProcessId(1));
        let pairs: Vec<_> = il.iter().collect();
        assert_eq!(
            pairs,
            vec![(ProcessId(0), ProcessId(1)), (ProcessId(2), ProcessId(0))]
        );
    }
}
