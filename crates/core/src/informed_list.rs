//! The informed-list `I(p)` of the `ears` protocol.
//!
//! `I(p)` is a set of pairs `⟨r, q⟩` meaning "process `p` knows that rumor
//! `r` has been sent to process `q` by some process" (paper, Section 3.1).
//! From `V(p)` and `I(p)` the process derives `L(p)`, the set of processes it
//! cannot ascertain have been sent every rumor in `V(p)`; the protocol keeps
//! gossiping while `L(p)` is non-empty.

use std::collections::BTreeSet;

use agossip_sim::ProcessId;

use crate::rumor::RumorSet;

/// The set of `⟨rumor origin, target⟩` pairs a process knows about.
///
/// Rumors are identified by their origin (each origin has exactly one rumor),
/// so a pair `(r, q)` is stored as `(r.origin, q)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InformedList {
    pairs: BTreeSet<(ProcessId, ProcessId)>,
}

impl InformedList {
    /// Creates an empty informed-list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the rumor originating at `rumor_origin` has been sent to
    /// `target`. Returns true if the pair is new.
    pub fn insert(&mut self, rumor_origin: ProcessId, target: ProcessId) -> bool {
        self.pairs.insert((rumor_origin, target))
    }

    /// Records that every rumor in `rumors` has been sent to `target`.
    pub fn insert_all(&mut self, rumors: &RumorSet, target: ProcessId) {
        for origin in rumors.origins() {
            self.pairs.insert((origin, target));
        }
    }

    /// True if the list records that `rumor_origin`'s rumor was sent to
    /// `target`.
    pub fn contains(&self, rumor_origin: ProcessId, target: ProcessId) -> bool {
        self.pairs.contains(&(rumor_origin, target))
    }

    /// Merges another informed-list into this one. Returns the number of new
    /// pairs.
    pub fn union(&mut self, other: &InformedList) -> usize {
        let before = self.pairs.len();
        self.pairs.extend(other.pairs.iter().copied());
        self.pairs.len() - before
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pair is recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Computes `L(p)` — the processes `q ∈ [n]` for which there exists a
    /// rumor `r ∈ rumors` with `(r, q)` not in the list (paper, Section 3.1).
    pub fn uncovered_targets(&self, rumors: &RumorSet, n: usize) -> Vec<ProcessId> {
        ProcessId::all(n)
            .filter(|&q| rumors.origins().any(|r| !self.contains(r, q)))
            .collect()
    }

    /// True if every process in `[n]` is covered for every rumor in `rumors`
    /// (i.e. `L(p) = ∅`).
    pub fn covers_all(&self, rumors: &RumorSet, n: usize) -> bool {
        ProcessId::all(n).all(|q| rumors.origins().all(|r| self.contains(r, q)))
    }

    /// Iterates over the pairs `(rumor origin, target)` in order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.pairs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rumor::Rumor;

    fn rumors(origins: &[usize]) -> RumorSet {
        origins
            .iter()
            .map(|&o| Rumor::new(ProcessId(o), o as u64))
            .collect()
    }

    #[test]
    fn insert_and_contains() {
        let mut il = InformedList::new();
        assert!(il.is_empty());
        assert!(il.insert(ProcessId(0), ProcessId(1)));
        assert!(!il.insert(ProcessId(0), ProcessId(1)));
        assert!(il.contains(ProcessId(0), ProcessId(1)));
        assert!(!il.contains(ProcessId(1), ProcessId(0)));
        assert_eq!(il.len(), 1);
    }

    #[test]
    fn insert_all_covers_every_rumor_for_target() {
        let mut il = InformedList::new();
        let v = rumors(&[0, 1, 2]);
        il.insert_all(&v, ProcessId(3));
        assert_eq!(il.len(), 3);
        for o in 0..3 {
            assert!(il.contains(ProcessId(o), ProcessId(3)));
        }
    }

    #[test]
    fn union_merges_pairs() {
        let mut a = InformedList::new();
        a.insert(ProcessId(0), ProcessId(1));
        let mut b = InformedList::new();
        b.insert(ProcessId(0), ProcessId(1));
        b.insert(ProcessId(2), ProcessId(3));
        assert_eq!(a.union(&b), 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a.union(&b), 0);
    }

    #[test]
    fn uncovered_targets_matches_definition() {
        let n = 3;
        let v = rumors(&[0, 1]);
        let mut il = InformedList::new();
        // Cover everything for target 0 and 1 but only rumor 0 for target 2.
        il.insert_all(&v, ProcessId(0));
        il.insert_all(&v, ProcessId(1));
        il.insert(ProcessId(0), ProcessId(2));
        let uncovered = il.uncovered_targets(&v, n);
        assert_eq!(uncovered, vec![ProcessId(2)]);
        assert!(!il.covers_all(&v, n));
        il.insert(ProcessId(1), ProcessId(2));
        assert!(il.covers_all(&v, n));
        assert!(il.uncovered_targets(&v, n).is_empty());
    }

    #[test]
    fn empty_rumor_set_is_trivially_covered() {
        let il = InformedList::new();
        assert!(il.covers_all(&RumorSet::new(), 5));
        assert!(il.uncovered_targets(&RumorSet::new(), 5).is_empty());
    }

    #[test]
    fn new_rumor_uncovers_targets_again() {
        let n = 2;
        let mut v = rumors(&[0]);
        let mut il = InformedList::new();
        il.insert_all(&v, ProcessId(0));
        il.insert_all(&v, ProcessId(1));
        assert!(il.covers_all(&v, n));
        // Learning a new rumor re-opens L(p).
        v.insert(Rumor::new(ProcessId(1), 1));
        assert!(!il.covers_all(&v, n));
        assert_eq!(il.uncovered_targets(&v, n).len(), 2);
    }

    #[test]
    fn iter_yields_sorted_pairs() {
        let mut il = InformedList::new();
        il.insert(ProcessId(2), ProcessId(0));
        il.insert(ProcessId(0), ProcessId(1));
        let pairs: Vec<_> = il.iter().collect();
        assert_eq!(
            pairs,
            vec![(ProcessId(0), ProcessId(1)), (ProcessId(2), ProcessId(0))]
        );
    }
}
