//! The historical thread-per-process harness API, now a thin veneer over
//! the live runtime subsystem.
//!
//! Earlier revisions of this crate were exactly this one file: a
//! self-contained harness with its own channel wiring, its own
//! pending-delay buffer and its own quiet-period coordinator. Those private
//! duplicates are gone — [`run_threaded`] is now [`crate::run_live`] with
//! the [`ChannelTransport`] and free-running pacing, so the same event
//! loop, byte codec and transport machinery back both entry points. The
//! types here survive for the callers (tests, examples, smoke tests) that
//! predate the [`crate::LiveConfig`] API.

use std::time::Duration;

use agossip_core::{GossipCtx, GossipEngine, RumorSet, WireCodec, WireDecodeView};
use agossip_sim::ProcessId;

use crate::driver::{run_live, LiveConfig, Pacing};
use crate::transport::ChannelTransport;

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of processes (threads).
    pub n: usize,
    /// Failure budget handed to the protocol (`f < n`).
    pub f: usize,
    /// Upper bound on the injected per-message delivery delay (the role of
    /// `d` in the model).
    pub max_delay: Duration,
    /// Upper bound on a node's pause between local steps (the role of `δ`).
    pub max_step_pause: Duration,
    /// Processes to crash, together with the number of local steps after
    /// which each crashes.
    pub crashes: Vec<(ProcessId, u64)>,
    /// Hard wall-clock limit on the run.
    pub max_duration: Duration,
    /// How long the system must stay quiet (all live nodes quiescent and no
    /// traffic) before the run is declared finished.
    pub quiet_period: Duration,
    /// Seed for delay/pacing randomness and the protocol instances.
    pub seed: u64,
}

impl RuntimeConfig {
    /// A configuration suitable for tests: small delays, sub-second runtime.
    pub fn quick(n: usize, f: usize, seed: u64) -> Self {
        RuntimeConfig {
            n,
            f,
            max_delay: Duration::from_millis(2),
            max_step_pause: Duration::from_millis(1),
            crashes: Vec::new(),
            max_duration: Duration::from_secs(20),
            quiet_period: Duration::from_millis(100),
            seed,
        }
    }

    /// Adds crash injections.
    pub fn with_crashes(mut self, crashes: Vec<(ProcessId, u64)>) -> Self {
        self.crashes = crashes;
        self
    }

    /// The equivalent [`LiveConfig`] (free-running pacing).
    pub fn to_live(&self) -> LiveConfig {
        LiveConfig {
            n: self.n,
            f: self.f,
            seed: self.seed,
            crashes: self.crashes.clone(),
            pacing: Pacing::FreeRunning {
                max_delay: self.max_delay,
                max_step_pause: self.max_step_pause,
                quiet_period: self.quiet_period,
                max_duration: self.max_duration,
            },
            threading: crate::driver::Threading::PerProcess,
        }
    }
}

/// Outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Total point-to-point messages sent by all nodes.
    pub messages_sent: u64,
    /// Total messages delivered to protocol state machines.
    pub messages_delivered: u64,
    /// Final rumor set of each node (crashed nodes report the set they had
    /// when they crashed).
    pub final_rumors: Vec<RumorSet>,
    /// Which nodes were still alive (not crash-injected) at the end.
    pub correct: Vec<bool>,
    /// Whether the run ended because the system went quiet (as opposed to the
    /// wall-clock limit).
    pub quiescent: bool,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Local steps taken per node.
    pub steps: Vec<u64>,
}

/// Runs every node of the protocol produced by `make` on its own thread until
/// the system goes quiet or the wall-clock limit expires.
///
/// Equivalent to [`run_live`] over the in-process [`ChannelTransport`] with
/// [`Pacing::FreeRunning`]; every message is encoded to bytes and decoded
/// back through [`agossip_core::codec`] on the way.
pub fn run_threaded<G, F>(config: &RuntimeConfig, make: F) -> RuntimeReport
where
    G: GossipEngine + Send,
    G::Msg: WireCodec + WireDecodeView + PartialEq,
    F: Fn(GossipCtx) -> G,
{
    // The channel transport itself cannot fail, but config validation can:
    // surface its message directly (the historical harness asserted the
    // same invariants inline).
    let report =
        run_live(&config.to_live(), &ChannelTransport, make).unwrap_or_else(|e| panic!("{e}"));
    RuntimeReport {
        messages_sent: report.messages_sent,
        messages_delivered: report.messages_delivered,
        final_rumors: report.final_rumors,
        correct: report.correct,
        quiescent: report.quiescent,
        elapsed: report.elapsed,
        steps: report.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agossip_core::{check_gossip, Ears, GossipSpec, Rumor, Tears, Trivial};

    fn initial_rumors(n: usize) -> Vec<Rumor> {
        (0..n).map(|i| Rumor::new(ProcessId(i), i as u64)).collect()
    }

    #[test]
    fn trivial_gossip_gathers_all_rumors_across_threads() {
        let config = RuntimeConfig::quick(8, 0, 1);
        let report = run_threaded(&config, Trivial::new);
        assert!(
            report.quiescent,
            "run should end by quiescence, not timeout"
        );
        assert_eq!(report.messages_sent, 8 * 7);
        let check = check_gossip(
            GossipSpec::Full,
            &report.final_rumors,
            &initial_rumors(8),
            &report.correct,
            report.quiescent,
        );
        assert!(check.all_ok(), "{check:?}");
    }

    #[test]
    fn ears_gossip_gathers_all_rumors_across_threads() {
        let config = RuntimeConfig::quick(8, 2, 2);
        let report = run_threaded(&config, Ears::new);
        assert!(report.quiescent);
        let check = check_gossip(
            GossipSpec::Full,
            &report.final_rumors,
            &initial_rumors(8),
            &report.correct,
            report.quiescent,
        );
        assert!(check.all_ok(), "{check:?}");
        assert!(report.messages_sent > 0);
        assert_eq!(report.messages_sent, report.messages_delivered);
    }

    #[test]
    fn crashed_nodes_do_not_prevent_completion() {
        let n = 10;
        let config = RuntimeConfig::quick(n, 3, 3).with_crashes(vec![
            (ProcessId(7), 1),
            (ProcessId(8), 2),
            (ProcessId(9), 0),
        ]);
        let report = run_threaded(&config, Ears::new);
        let check = check_gossip(
            GossipSpec::Full,
            &report.final_rumors,
            &initial_rumors(n),
            &report.correct,
            true,
        );
        // Gathering among the correct processes must still hold.
        assert!(check.gathering_ok, "{check:?}");
        assert!(check.validity_ok);
        assert_eq!(report.correct.iter().filter(|c| !**c).count(), 3);
    }

    #[test]
    fn tears_reaches_majority_across_threads() {
        let n = 24;
        let config = RuntimeConfig::quick(n, 0, 4);
        let report = run_threaded(&config, Tears::new);
        let check = check_gossip(
            GossipSpec::Majority,
            &report.final_rumors,
            &initial_rumors(n),
            &report.correct,
            true,
        );
        assert!(check.gathering_ok, "{check:?}");
    }

    #[test]
    fn steps_are_recorded_per_node() {
        let config = RuntimeConfig::quick(4, 0, 5);
        let report = run_threaded(&config, Trivial::new);
        assert_eq!(report.steps.len(), 4);
        assert!(report.steps.iter().all(|&s| s > 0));
        assert!(report.elapsed < config.max_duration);
    }
}
