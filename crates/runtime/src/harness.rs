//! The thread-per-process execution harness.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use agossip_core::{GossipCtx, GossipEngine, RumorSet};
use agossip_sim::rng::{derive_seed, RngStream};
use agossip_sim::ProcessId;

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of processes (threads).
    pub n: usize,
    /// Failure budget handed to the protocol (`f < n`).
    pub f: usize,
    /// Upper bound on the injected per-message delivery delay (the role of
    /// `d` in the model).
    pub max_delay: Duration,
    /// Upper bound on a node's pause between local steps (the role of `δ`).
    pub max_step_pause: Duration,
    /// Processes to crash, together with the number of local steps after
    /// which each crashes.
    pub crashes: Vec<(ProcessId, u64)>,
    /// Hard wall-clock limit on the run.
    pub max_duration: Duration,
    /// How long the system must stay quiet (all live nodes quiescent and no
    /// traffic) before the run is declared finished.
    pub quiet_period: Duration,
    /// Seed for delay/pacing randomness and the protocol instances.
    pub seed: u64,
}

impl RuntimeConfig {
    /// A configuration suitable for tests: small delays, sub-second runtime.
    pub fn quick(n: usize, f: usize, seed: u64) -> Self {
        RuntimeConfig {
            n,
            f,
            max_delay: Duration::from_millis(2),
            max_step_pause: Duration::from_millis(1),
            crashes: Vec::new(),
            max_duration: Duration::from_secs(20),
            quiet_period: Duration::from_millis(100),
            seed,
        }
    }

    /// Adds crash injections.
    pub fn with_crashes(mut self, crashes: Vec<(ProcessId, u64)>) -> Self {
        self.crashes = crashes;
        self
    }
}

/// Outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Total point-to-point messages sent by all nodes.
    pub messages_sent: u64,
    /// Total messages delivered to protocol state machines.
    pub messages_delivered: u64,
    /// Final rumor set of each node (crashed nodes report the set they had
    /// when they crashed).
    pub final_rumors: Vec<RumorSet>,
    /// Which nodes were still alive (not crash-injected) at the end.
    pub correct: Vec<bool>,
    /// Whether the run ended because the system went quiet (as opposed to the
    /// wall-clock limit).
    pub quiescent: bool,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Local steps taken per node.
    pub steps: Vec<u64>,
}

/// Per-node result slot: the final rumor set and local step count, filled in
/// when the node's thread exits.
type ResultSlots = Vec<Option<(RumorSet, u64)>>;

struct Wire<M> {
    payload: M,
    from: ProcessId,
    deliver_after: Instant,
}

/// A received message waiting out its injected delay, ordered for a min-heap
/// on `(deliver_after, seq)` so the delay buffer is deadline-indexed like the
/// simulator's network (no per-step linear scan), with FIFO tie-breaking.
struct Pending<M> {
    deliver_after: Instant,
    /// Receiver-side arrival counter; unique per node.
    seq: u64,
    from: ProcessId,
    payload: M,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<M> Eq for Pending<M> {}

impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deliver_after
            .cmp(&self.deliver_after)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Shared {
    stop: AtomicBool,
    sent: AtomicU64,
    delivered: AtomicU64,
    last_activity_ms: AtomicU64,
    started: Instant,
}

impl Shared {
    fn touch(&self) {
        let elapsed = self.started.elapsed().as_millis() as u64;
        self.last_activity_ms.store(elapsed, Ordering::Relaxed);
    }

    fn since_last_activity(&self) -> Duration {
        let last = self.last_activity_ms.load(Ordering::Relaxed);
        let now = self.started.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(last))
    }
}

/// Runs every node of the protocol produced by `make` on its own thread until
/// the system goes quiet or the wall-clock limit expires.
pub fn run_threaded<G, F>(config: &RuntimeConfig, make: F) -> RuntimeReport
where
    G: GossipEngine + Send + 'static,
    G::Msg: Send,
    F: Fn(GossipCtx) -> G,
{
    assert!(config.n > 0, "need at least one process");
    assert!(config.f < config.n, "f must be < n");

    let n = config.n;
    let mut senders: Vec<Sender<Wire<G::Msg>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Wire<G::Msg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }

    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        sent: AtomicU64::new(0),
        delivered: AtomicU64::new(0),
        last_activity_ms: AtomicU64::new(0),
        started: Instant::now(),
    });
    let quiescent_flags: Arc<Vec<AtomicBool>> =
        Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let results: Arc<Mutex<ResultSlots>> = Arc::new(Mutex::new(vec![None; n]));

    let mut handles = Vec::with_capacity(n);
    for (i, rx) in receivers.into_iter().enumerate() {
        let pid = ProcessId(i);
        let engine = make(GossipCtx::new(pid, n, config.f, config.seed));
        let senders = senders.clone();
        let shared = Arc::clone(&shared);
        let quiescent_flags = Arc::clone(&quiescent_flags);
        let results = Arc::clone(&results);
        let crash_after = config
            .crashes
            .iter()
            .find(|(victim, _)| *victim == pid)
            .map(|(_, steps)| *steps);
        let max_delay = config.max_delay;
        let max_pause = config.max_step_pause;
        let seed = config.seed;
        let handle = thread::spawn(move || {
            node_loop(
                pid,
                engine,
                rx,
                senders,
                shared,
                quiescent_flags,
                results,
                crash_after,
                max_delay,
                max_pause,
                seed,
            )
        });
        handles.push(handle);
    }
    drop(senders);

    // Coordinator: wait for sustained quiet or the wall-clock limit.
    let quiescent = loop {
        thread::sleep(Duration::from_millis(5));
        let elapsed = shared.started.elapsed();
        if elapsed >= config.max_duration {
            break false;
        }
        let all_quiet = quiescent_flags
            .iter()
            .all(|flag| flag.load(Ordering::Relaxed));
        if all_quiet && shared.since_last_activity() >= config.quiet_period {
            break true;
        }
    };
    shared.stop.store(true, Ordering::Relaxed);
    for handle in handles {
        let _ = handle.join();
    }

    let elapsed = shared.started.elapsed();
    let collected = results.lock();
    let mut final_rumors = Vec::with_capacity(n);
    let mut steps = Vec::with_capacity(n);
    for entry in collected.iter() {
        match entry {
            Some((rumors, step_count)) => {
                final_rumors.push(rumors.clone());
                steps.push(*step_count);
            }
            None => {
                final_rumors.push(RumorSet::new());
                steps.push(0);
            }
        }
    }
    let correct: Vec<bool> = ProcessId::all(n)
        .map(|pid| !config.crashes.iter().any(|(victim, _)| *victim == pid))
        .collect();

    RuntimeReport {
        messages_sent: shared.sent.load(Ordering::Relaxed),
        messages_delivered: shared.delivered.load(Ordering::Relaxed),
        final_rumors,
        correct,
        quiescent,
        elapsed,
        steps,
    }
}

#[allow(clippy::too_many_arguments)]
fn node_loop<G>(
    pid: ProcessId,
    mut engine: G,
    rx: Receiver<Wire<G::Msg>>,
    senders: Vec<Sender<Wire<G::Msg>>>,
    shared: Arc<Shared>,
    quiescent_flags: Arc<Vec<AtomicBool>>,
    results: Arc<Mutex<ResultSlots>>,
    crash_after: Option<u64>,
    max_delay: Duration,
    max_pause: Duration,
    seed: u64,
) where
    G: GossipEngine,
{
    let mut rng = StdRng::seed_from_u64(derive_seed(seed ^ 0xA51C, RngStream::Process(pid)));
    let mut pending: std::collections::BinaryHeap<Pending<G::Msg>> =
        std::collections::BinaryHeap::new();
    let mut pending_seq = 0u64;
    let mut out: Vec<(ProcessId, G::Msg)> = Vec::new();
    let mut steps = 0u64;

    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(limit) = crash_after {
            if steps >= limit {
                break; // crash: halt permanently, deliver nothing further
            }
        }

        // Drain the channel into the deadline-indexed delay buffer.
        while let Ok(wire) = rx.try_recv() {
            pending.push(Pending {
                deliver_after: wire.deliver_after,
                seq: pending_seq,
                from: wire.from,
                payload: wire.payload,
            });
            pending_seq += 1;
        }

        // Deliver everything whose injected delay has expired; the heap top
        // is the earliest deadline, so this touches only due messages.
        let now = Instant::now();
        while pending.peek().is_some_and(|p| p.deliver_after <= now) {
            let p = pending.pop().expect("peeked element");
            engine.deliver(p.from, p.payload);
            shared.delivered.fetch_add(1, Ordering::Relaxed);
            shared.touch();
        }

        // One local step.
        out.clear();
        engine.local_step(&mut out);
        steps += 1;
        if !out.is_empty() {
            shared.sent.fetch_add(out.len() as u64, Ordering::Relaxed);
            shared.touch();
            let now = Instant::now();
            for (to, msg) in out.drain(..) {
                let delay =
                    Duration::from_micros(rng.gen_range(0..=max_delay.as_micros().max(1) as u64));
                // A send to a crashed (terminated) node fails; that is
                // exactly a message that is never delivered.
                let _ = senders[to.index()].send(Wire {
                    payload: msg,
                    from: pid,
                    deliver_after: now + delay,
                });
            }
        }

        quiescent_flags[pid.index()].store(
            engine.is_quiescent() && pending.is_empty(),
            Ordering::Relaxed,
        );

        // Pace the next step (the role of δ).
        let pause = Duration::from_micros(rng.gen_range(0..=max_pause.as_micros().max(1) as u64));
        thread::sleep(pause);
    }

    // Whether the node crashed or the run is over, it will never send again:
    // mark it quiescent so the coordinator is not blocked on a crashed node.
    quiescent_flags[pid.index()].store(true, Ordering::Relaxed);
    let mut slot = results.lock();
    slot[pid.index()] = Some((engine.rumors().clone(), steps));
}

#[cfg(test)]
mod tests {
    use super::*;
    use agossip_core::{check_gossip, Ears, GossipSpec, Rumor, Tears, Trivial};

    fn initial_rumors(n: usize) -> Vec<Rumor> {
        (0..n).map(|i| Rumor::new(ProcessId(i), i as u64)).collect()
    }

    #[test]
    fn trivial_gossip_gathers_all_rumors_across_threads() {
        let config = RuntimeConfig::quick(8, 0, 1);
        let report = run_threaded(&config, Trivial::new);
        assert!(
            report.quiescent,
            "run should end by quiescence, not timeout"
        );
        assert_eq!(report.messages_sent, 8 * 7);
        let check = check_gossip(
            GossipSpec::Full,
            &report.final_rumors,
            &initial_rumors(8),
            &report.correct,
            report.quiescent,
        );
        assert!(check.all_ok(), "{check:?}");
    }

    #[test]
    fn ears_gossip_gathers_all_rumors_across_threads() {
        let config = RuntimeConfig::quick(8, 2, 2);
        let report = run_threaded(&config, Ears::new);
        assert!(report.quiescent);
        let check = check_gossip(
            GossipSpec::Full,
            &report.final_rumors,
            &initial_rumors(8),
            &report.correct,
            report.quiescent,
        );
        assert!(check.all_ok(), "{check:?}");
        assert!(report.messages_sent > 0);
        assert_eq!(report.messages_sent, report.messages_delivered);
    }

    #[test]
    fn crashed_nodes_do_not_prevent_completion() {
        let n = 10;
        let config = RuntimeConfig::quick(n, 3, 3).with_crashes(vec![
            (ProcessId(7), 1),
            (ProcessId(8), 2),
            (ProcessId(9), 0),
        ]);
        let report = run_threaded(&config, Ears::new);
        let check = check_gossip(
            GossipSpec::Full,
            &report.final_rumors,
            &initial_rumors(n),
            &report.correct,
            true,
        );
        // Gathering among the correct processes must still hold.
        assert!(check.gathering_ok, "{check:?}");
        assert!(check.validity_ok);
        assert_eq!(report.correct.iter().filter(|c| !**c).count(), 3);
    }

    #[test]
    fn tears_reaches_majority_across_threads() {
        let n = 24;
        let config = RuntimeConfig::quick(n, 0, 4);
        let report = run_threaded(&config, Tears::new);
        let check = check_gossip(
            GossipSpec::Majority,
            &report.final_rumors,
            &initial_rumors(n),
            &report.correct,
            true,
        );
        assert!(check.gathering_ok, "{check:?}");
    }

    #[test]
    fn steps_are_recorded_per_node() {
        let config = RuntimeConfig::quick(4, 0, 5);
        let report = run_threaded(&config, Trivial::new);
        assert_eq!(report.steps.len(), 4);
        assert!(report.steps.iter().all(|&s| s > 0));
        assert!(report.elapsed < config.max_duration);
    }
}
