//! Service mode: a continuously-fed, multi-epoch gossip run.
//!
//! Where [`crate::driver::run_live`] gossips *one* rumor set to quiescence
//! and stops, [`run_service`] keeps the runtime under sustained load: the
//! driver admits fresh rumor epochs into a bounded window while earlier
//! epochs are still in flight, detects per-epoch settlement, verifies every
//! epoch against the gossip checker, and garbage-collects settled epochs so
//! live state stays `O(window)` no matter how many epochs the run covers.
//!
//! The moving parts live in `agossip-core`'s [`epoch`] module: every node
//! runs an [`EpochMux`] (one inner engine per open epoch, multiplexed over
//! the node's single transport endpoint via `EpochMsg` envelope frames),
//! and driver ↔ node coordination travels through a shared [`EpochBoard`]
//! (admission frontier, per-epoch activity clocks, harvest cells). The node
//! event loops and reactor threads are **unchanged** — an `EpochMux` is
//! just another [`GossipEngine`], so the same lockstep barrier protocol and
//! free-running loops that drive one-shot runs drive service runs too.
//!
//! ## Epoch lifecycle
//!
//! ```text
//! admitted ──► open ──► settled ──► harvested ──► finalized (checked, GC'd)
//! ```
//!
//! * **Admitted** — the driver publishes the admission frontier
//!   [`service_open_upto`]`(mode, window, total, now, finalized)`, a pure
//!   monotone function of driver time and completed epochs: this is the
//!   epoch scheduler, and being a pure function of `(seed, tick)` is what
//!   keeps lockstep service runs bit-identical across threadings.
//! * **Open** — each node instantiates the epoch's engine at its next local
//!   step, seeded from [`agossip_core::epoch::epoch_seed`], with its
//!   generated per-epoch rumor.
//! * **Settled** — no send, delivery, or non-quiescent engine has bumped
//!   the epoch's activity clock for longer than the settle margin (`d`
//!   ticks under lockstep; the configured quiet period free-running).
//!   Per-epoch staleness replaces the global quiet streak: with pipelined
//!   epochs a busy epoch would mask a stalled one, so an epoch that
//!   neither settles nor shows activity raises
//!   [`RuntimeError::EpochStalled`] instead of hanging to `max_duration`.
//! * **Harvested** — the driver requests the epoch's final rumor sets; each
//!   node deposits its set on the board and **drops the engine** (the
//!   garbage collection).
//! * **Finalized** — strictly in epoch order, the driver runs
//!   [`check_gossip`] over the harvested sets and frees the slot, which
//!   un-gates the admission frontier (closed loop) and the slot ring.
//!
//! [`epoch`]: agossip_core::epoch
//! [`service_open_upto`]: agossip_core::service_open_upto

use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use agossip_core::{
    check_gossip, epoch_initial_rumors, service_open_upto, CheckReport, EpochBoard, EpochMux,
    GossipCtx, GossipEngine, GossipSpec, LoopMode, RumorSet, WireCodec, WireDecodeView,
};
use agossip_sim::ProcessId;

use crate::clock::{Clock, MonotonicClock};
use crate::driver::{join_nodes, join_reactors, pin_to_reactors, LiveConfig, Pacing, Threading};
use crate::error::{ConfigError, RuntimeError};
use crate::event_loop::{run_free_node, run_lockstep_node, FreeNode, LockstepNode, SharedRun};
use crate::reactor::{run_free_reactor, run_lockstep_reactor};
use crate::transport::Transport;

/// Upper bound on poll-only settle rounds per lockstep tick (see
/// [`crate::driver`]); service runs use the same transport guarantee.
const MAX_SETTLE_ROUNDS: u64 = 100_000;

/// Configuration of a service run: a [`LiveConfig`] (processes, pacing,
/// threading, crashes — build one with [`LiveConfig::builder`]) plus the
/// epoch pipeline knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// The underlying live-run configuration. The master seed also seeds
    /// the deterministic per-epoch workload generator
    /// ([`agossip_core::epoch::epoch_rumor`]).
    pub live: LiveConfig,
    /// Total number of epochs the run must finalize.
    pub epochs: u64,
    /// Slot-ring capacity: at most `window` epochs may be open at once, and
    /// live state is bounded by it.
    pub window: usize,
    /// Admission policy: open loop (fixed rate) or closed loop (fixed
    /// in-flight count).
    pub mode: LoopMode,
    /// What the per-epoch checker must verify.
    pub spec: GossipSpec,
    /// How long an epoch may sit unsettled before the run aborts with
    /// [`RuntimeError::EpochStalled`] — in lockstep ticks, or milliseconds
    /// when free-running.
    pub stall_limit: u64,
}

impl ServiceConfig {
    /// A service run over an existing [`LiveConfig`], with closed-loop
    /// defaults: window 8, 4 epochs in flight, full gossip, stall limit
    /// 10 000 time units.
    pub fn new(live: LiveConfig, epochs: u64) -> Self {
        ServiceConfig {
            live,
            epochs,
            window: 8,
            mode: LoopMode::Closed { in_flight: 4 },
            spec: GossipSpec::Full,
            stall_limit: 10_000,
        }
    }

    /// Shorthand: a lockstep closed-loop service run (thread per process).
    pub fn lockstep(n: usize, f: usize, seed: u64, epochs: u64) -> Self {
        ServiceConfig::new(LiveConfig::lockstep(n, f, seed), epochs)
    }

    /// Sets the window (slot-ring capacity).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets the admission policy.
    pub fn with_mode(mut self, mode: LoopMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the per-epoch checker spec.
    pub fn with_spec(mut self, spec: GossipSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the stall limit (ticks or milliseconds, per pacing).
    pub fn with_stall_limit(mut self, stall_limit: u64) -> Self {
        self.stall_limit = stall_limit;
        self
    }

    /// Validates the full configuration, including the [`LiveConfig`]
    /// checks and the service-specific ones.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.live.validate()?;
        if self.window == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if self.epochs == 0 {
            return Err(ConfigError::ZeroEpochs);
        }
        if let Pacing::FreeRunning {
            max_delay,
            quiet_period,
            ..
        } = self.live.pacing
        {
            if quiet_period <= max_delay {
                return Err(ConfigError::QuietPeriodTooShort {
                    quiet_period_ms: quiet_period.as_millis() as u64,
                    max_delay_ms: max_delay.as_millis() as u64,
                });
            }
        }
        Ok(())
    }
}

/// One finalized epoch. Time fields are in the run's time unit (lockstep
/// ticks, or milliseconds free-running).
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// The epoch number.
    pub epoch: u64,
    /// When the driver admitted the epoch.
    pub opened_at: u64,
    /// The epoch's last observed activity before it settled — so the
    /// settle latency is margin-free.
    pub settled_at: u64,
    /// When the driver checked and freed the epoch.
    pub finalized_at: u64,
    /// The per-epoch gossip checker verdict.
    pub check: CheckReport,
}

impl EpochReport {
    /// Open-to-settle latency in the run's time unit.
    pub fn settle_latency(&self) -> u64 {
        self.settled_at.saturating_sub(self.opened_at)
    }
}

/// Outcome of a service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Which transport carried the frames.
    pub transport: &'static str,
    /// Finalized epochs, in epoch order.
    pub epochs: Vec<EpochReport>,
    /// Local steps taken per node (of the mux, i.e. service steps).
    pub steps: Vec<u64>,
    /// Point-to-point messages handed to the transport.
    pub messages_sent: u64,
    /// Messages delivered to engines.
    pub messages_delivered: u64,
    /// Payload bytes handed to the transport.
    pub bytes_sent: u64,
    /// Frames whose payload failed to decode.
    pub decode_errors: u64,
    /// Well-formed frames for already-finalized epochs, absorbed.
    pub stale_drops: u64,
    /// Peak number of concurrently outstanding (admitted, not yet
    /// finalized) epochs.
    pub max_open: u64,
    /// Whether every configured epoch finalized before the run's limit.
    pub quiescent: bool,
    /// Lockstep ticks elapsed (0 when free-running).
    pub ticks: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ServiceReport {
    /// Whether every epoch finalized and passed its check.
    pub fn all_ok(&self) -> bool {
        self.quiescent && self.epochs.iter().all(|e| e.check.all_ok())
    }

    /// Open-to-settle latencies in epoch order (feed to
    /// [`agossip_core::percentile`]).
    pub fn settle_latencies(&self) -> Vec<u64> {
        self.epochs
            .iter()
            .map(EpochReport::settle_latency)
            .collect()
    }
}

/// Driver-side view of one slot in the epoch ring.
#[derive(Debug, Clone, Copy)]
enum SlotState {
    /// No epoch assigned (or its epoch already finalized).
    Free,
    /// Admitted and gossiping.
    Open { epoch: u64, opened_at: u64 },
    /// Settled; harvest requested at `detected_at`, engines dropping.
    Harvesting {
        epoch: u64,
        opened_at: u64,
        settled_at: u64,
        detected_at: u64,
    },
}

/// The driver-side service state machine, shared by the lockstep and
/// free-running drivers. All times are in the run's time unit.
struct ServiceTracker {
    board: Arc<EpochBoard>,
    n: usize,
    seed: u64,
    spec: GossipSpec,
    mode: LoopMode,
    window: usize,
    total: u64,
    /// Settle margin: `d` under lockstep, the quiet period (ms) free-running.
    margin: u64,
    stall_limit: u64,
    lockstep: bool,
    /// Which nodes are never crash-injected (the checker's `correct` set,
    /// and the set whose harvests the free-running driver waits for).
    correct: Vec<bool>,
    slots: Vec<SlotState>,
    finalized: u64,
    admitted: u64,
    max_open: u64,
    reports: Vec<EpochReport>,
}

impl ServiceTracker {
    fn new(config: &ServiceConfig, board: Arc<EpochBoard>, margin: u64, lockstep: bool) -> Self {
        let n = config.live.n;
        let correct: Vec<bool> = ProcessId::all(n)
            .map(|pid| config.live.crash_after(pid).is_none())
            .collect();
        ServiceTracker {
            board,
            n,
            seed: config.live.seed,
            spec: config.spec,
            mode: config.mode,
            window: config.window,
            total: config.epochs,
            margin,
            stall_limit: config.stall_limit,
            lockstep,
            correct,
            slots: vec![SlotState::Free; config.window],
            finalized: 0,
            admitted: 0,
            max_open: 0,
            reports: Vec::with_capacity(config.epochs.min(1 << 20) as usize),
        }
    }

    fn done(&self) -> bool {
        self.finalized >= self.total
    }

    /// Finalize → settle-detect → stall-detect → admit, at driver time
    /// `now`. Under lockstep `now` is the tick the nodes just computed and
    /// `admit_now` is the tick they are about to compute; free-running both
    /// are the current millisecond clock.
    fn step(&mut self, now: u64, admit_now: u64) -> Result<(), RuntimeError> {
        self.finalize(now)?;
        self.detect_settled(now);
        self.detect_stalled(now)?;
        self.admit(admit_now);
        Ok(())
    }

    /// Finalizes ready epochs strictly in epoch order: takes the harvest,
    /// runs the checker, frees the slot, advances the floor.
    fn finalize(&mut self, now: u64) -> Result<(), RuntimeError> {
        while self.finalized < self.total {
            let slot = self.board.slot_of(self.finalized);
            let (epoch, opened_at, settled_at) = match self.slots[slot] {
                SlotState::Harvesting {
                    epoch,
                    opened_at,
                    settled_at,
                    detected_at,
                } if epoch == self.finalized && self.harvest_ready(slot, detected_at, now) => {
                    (epoch, opened_at, settled_at)
                }
                _ => break,
            };
            let mut final_rumors = vec![RumorSet::new(); self.n];
            for (pid, set) in self.board.take_harvest(slot) {
                if let Some(entry) = final_rumors.get_mut(pid.index()) {
                    *entry = set;
                }
            }
            let initial = epoch_initial_rumors(self.seed, epoch, self.n);
            let check = check_gossip(self.spec, &final_rumors, &initial, &self.correct, true);
            self.reports.push(EpochReport {
                epoch,
                opened_at,
                settled_at,
                finalized_at: now,
                check,
            });
            self.slots[slot] = SlotState::Free;
            self.finalized += 1;
            self.board.set_finalized_floor(self.finalized);
        }
        Ok(())
    }

    /// Whether every expected harvest for `slot` has been deposited.
    ///
    /// Lockstep: the request was published at tick `detected_at` with the
    /// nodes parked, every live node harvests during tick `detected_at+1`,
    /// so one full tick suffices. Free-running: wait until every
    /// never-crash-injected node has pushed (crashed nodes' engines died
    /// with their threads).
    fn harvest_ready(&self, slot: usize, detected_at: u64, now: u64) -> bool {
        if self.lockstep {
            return now > detected_at;
        }
        let mut pushed = vec![false; self.n];
        for pid in self.board.harvested_pids(slot) {
            if let Some(flag) = pushed.get_mut(pid.index()) {
                *flag = true;
            }
        }
        self.correct
            .iter()
            .zip(&pushed)
            .all(|(correct, pushed)| !correct || *pushed)
    }

    /// Marks epochs whose activity clock has been still past the margin:
    /// requests their harvest and starts their finalize countdown.
    fn detect_settled(&mut self, now: u64) {
        for slot in 0..self.slots.len() {
            if let SlotState::Open { epoch, opened_at } = self.slots[slot] {
                let last = self.board.last_activity(slot);
                if now.saturating_sub(last) > self.margin {
                    self.board.request_harvest(slot, epoch);
                    self.slots[slot] = SlotState::Harvesting {
                        epoch,
                        opened_at,
                        settled_at: last,
                        detected_at: now,
                    };
                }
            }
        }
    }

    /// Raises [`RuntimeError::EpochStalled`] for any epoch that has neither
    /// settled nor (free-running) delivered its harvests within the limit.
    fn detect_stalled(&self, now: u64) -> Result<(), RuntimeError> {
        for state in &self.slots {
            let (epoch, since) = match *state {
                SlotState::Open { epoch, opened_at } => (epoch, opened_at),
                SlotState::Harvesting {
                    epoch, detected_at, ..
                } if !self.lockstep => (epoch, detected_at),
                _ => continue,
            };
            let stalled_for = now.saturating_sub(since);
            if stalled_for > self.stall_limit {
                return Err(RuntimeError::EpochStalled { epoch, stalled_for });
            }
        }
        Ok(())
    }

    /// Publishes the admission frontier for time `now` and assigns fresh
    /// epochs to their (guaranteed free) slots.
    fn admit(&mut self, now: u64) {
        let upto = service_open_upto(self.mode, self.window, self.total, now, self.finalized)
            .max(self.admitted);
        while self.admitted < upto {
            let epoch = self.admitted;
            let slot = self.board.slot_of(epoch);
            self.slots[slot] = SlotState::Open {
                epoch,
                opened_at: now,
            };
            self.board.reset_activity(slot, now);
            self.admitted += 1;
        }
        self.board.publish_open_upto(self.admitted);
        self.max_open = self.max_open.max(self.admitted - self.finalized);
    }
}

/// Runs a service-mode gossip: `make` builds one inner engine per
/// `(process, epoch)` pair, exactly as it builds one per process for
/// [`crate::driver::run_live`] — the [`GossipCtx`] it receives carries the
/// epoch's derived seed and generated rumor.
pub fn run_service<T, G, F>(
    config: &ServiceConfig,
    transport: &T,
    make: F,
) -> Result<ServiceReport, RuntimeError>
where
    T: Transport,
    G: GossipEngine + Send,
    F: Fn(GossipCtx) -> G + Clone + Send,
    G::Msg: WireCodec + WireDecodeView + PartialEq + Send,
{
    run_service_with_clock(config, transport, Arc::new(MonotonicClock::new()), make)
}

/// [`run_service`] with an injected time source (free-running pacing reads
/// delays and the stall clock through it).
pub fn run_service_with_clock<T, G, F>(
    config: &ServiceConfig,
    transport: &T,
    clock: Arc<dyn Clock>,
    make: F,
) -> Result<ServiceReport, RuntimeError>
where
    T: Transport,
    G: GossipEngine + Send,
    F: Fn(GossipCtx) -> G + Clone + Send,
    G::Msg: WireCodec + WireDecodeView + PartialEq + Send,
{
    config.validate()?;
    let n = config.live.n;
    let seed = config.live.seed;
    let endpoints = transport.open(n)?;
    let shared = SharedRun::new(n, clock);
    let board = Arc::new(EpochBoard::new(config.window));
    let muxes: Vec<EpochMux<G, F>> = ProcessId::all(n)
        .map(|pid| {
            EpochMux::new(
                Arc::clone(&board),
                pid,
                n,
                config.live.f,
                seed,
                make.clone(),
            )
        })
        .collect();

    let mut quiescent = false;
    let mut ticks = 0u64;
    let mut tracker;
    let outcomes = match (&config.live.pacing, config.live.threading) {
        (&Pacing::Lockstep { d, max_ticks }, Threading::PerProcess) => {
            tracker = ServiceTracker::new(config, Arc::clone(&board), d, true);
            let barrier = Barrier::new(n + 1);
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n);
                for (pid, (engine, endpoint)) in muxes.into_iter().zip(endpoints).enumerate() {
                    let node = LockstepNode {
                        engine,
                        endpoint,
                        crash_after: config.live.crash_after(ProcessId(pid)),
                        seed,
                        d,
                    };
                    let shared = &shared;
                    let barrier = &barrier;
                    handles.push(scope.spawn(move || run_lockstep_node(node, shared, barrier)));
                }
                (quiescent, ticks) =
                    drive_service_lockstep(&barrier, &shared, &mut tracker, max_ticks);
                join_nodes(handles, &shared)
            })
        }
        (&Pacing::Lockstep { d, max_ticks }, Threading::Reactor { reactors }) => {
            tracker = ServiceTracker::new(config, Arc::clone(&board), d, true);
            let r = reactors.min(n);
            let barrier = Barrier::new(r + 1);
            let groups = pin_to_reactors(&config.live, muxes, endpoints, r);
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(r);
                for group in groups {
                    let shared = &shared;
                    let barrier = &barrier;
                    handles.push(
                        scope.spawn(move || run_lockstep_reactor(group, seed, d, shared, barrier)),
                    );
                }
                (quiescent, ticks) =
                    drive_service_lockstep(&barrier, &shared, &mut tracker, max_ticks);
                join_reactors(handles, n, &shared)
            })
        }
        (
            &Pacing::FreeRunning {
                max_delay,
                max_step_pause,
                quiet_period,
                max_duration,
            },
            Threading::PerProcess,
        ) => {
            let margin = quiet_period.as_millis() as u64;
            tracker = ServiceTracker::new(config, Arc::clone(&board), margin, false);
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n);
                for (pid, (engine, endpoint)) in muxes.into_iter().zip(endpoints).enumerate() {
                    let node = FreeNode {
                        engine,
                        endpoint,
                        crash_after: config.live.crash_after(ProcessId(pid)),
                        seed,
                        max_delay,
                        max_step_pause,
                    };
                    let shared = &shared;
                    handles.push(scope.spawn(move || run_free_node(node, shared)));
                }
                quiescent = drive_service_free(&shared, &mut tracker, max_duration);
                join_nodes(handles, &shared)
            })
        }
        (
            &Pacing::FreeRunning {
                max_delay,
                max_step_pause,
                quiet_period,
                max_duration,
            },
            Threading::Reactor { reactors },
        ) => {
            let margin = quiet_period.as_millis() as u64;
            tracker = ServiceTracker::new(config, Arc::clone(&board), margin, false);
            let r = reactors.min(n);
            let groups = pin_to_reactors(&config.live, muxes, endpoints, r);
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(r);
                for group in groups {
                    let shared = &shared;
                    handles.push(scope.spawn(move || {
                        run_free_reactor(group, seed, max_delay, max_step_pause, shared)
                    }));
                }
                quiescent = drive_service_free(&shared, &mut tracker, max_duration);
                join_reactors(handles, n, &shared)
            })
        }
    };

    if let Some(error) = shared.first_error.lock().take() {
        return Err(error);
    }

    Ok(ServiceReport {
        transport: transport.name(),
        epochs: tracker.reports,
        steps: outcomes.iter().map(|o| o.steps).collect(),
        messages_sent: shared.stats.messages_sent.load(Ordering::Relaxed),
        messages_delivered: shared.stats.messages_delivered.load(Ordering::Relaxed),
        bytes_sent: shared.stats.bytes_sent.load(Ordering::Relaxed),
        decode_errors: shared.stats.decode_errors.load(Ordering::Relaxed),
        stale_drops: board.stale_drops(),
        max_open: tracker.max_open,
        quiescent,
        ticks,
        elapsed: shared.elapsed(),
    })
}

/// The service variant of the lockstep driver: the identical settle / quiet
/// barrier protocol (nodes can't tell the difference), but between the two
/// quiet-check barriers — with every node parked — the driver runs the
/// epoch state machine instead of counting quiet streaks: finalize settled
/// epochs, detect newly-settled ones, advance driver time, publish the
/// admission frontier for the tick the nodes are about to compute. The run
/// stops when every epoch has finalized (or on error / tick limit).
fn drive_service_lockstep(
    barrier: &Barrier,
    shared: &SharedRun,
    svc: &mut ServiceTracker,
    max_ticks: u64,
) -> (bool, u64) {
    // Nodes read the admission frontier during their first local step
    // (tick 0), which happens before the first quiet-check window — so the
    // first epochs are admitted before the tick loop begins.
    svc.board.set_now(0);
    svc.admit(0);
    let mut quiescent = false;
    let mut ticks = 0u64;
    'ticks: loop {
        // Settle rounds — byte-identical to the one-shot driver's.
        let mut settle_rounds = 0u64;
        loop {
            barrier.wait(); // nodes have polled
            let sent = shared.stats.messages_sent.load(Ordering::Relaxed);
            let consumed = shared.stats.frames_consumed.load(Ordering::Relaxed);
            let settled = sent == consumed;
            shared.settled.store(settled, Ordering::Relaxed);
            settle_rounds += 1;
            if settle_rounds > MAX_SETTLE_ROUNDS {
                shared.record_error(RuntimeError::Config(format!(
                    "transport failed to settle: {consumed}/{sent} frames \
                     consumed after {settle_rounds} poll rounds"
                )));
            }
            if shared.has_error() {
                shared.stop.store(true, Ordering::Relaxed);
            }
            let stopping = shared.stop.load(Ordering::Relaxed);
            barrier.wait(); // verdict published
            if stopping {
                break 'ticks;
            }
            if settled {
                break;
            }
            thread::yield_now();
        }
        // Quiet-check window: nodes are parked between these two waits.
        barrier.wait();
        ticks += 1;
        let t = ticks - 1; // the tick the nodes just computed
        if let Err(error) = svc.step(t, t + 1) {
            shared.record_error(error);
        }
        svc.board.set_now(t + 1);
        if svc.done() {
            quiescent = true;
            shared.stop.store(true, Ordering::Relaxed);
        }
        if ticks >= max_ticks || shared.has_error() {
            shared.stop.store(true, Ordering::Relaxed);
        }
        let stopping = shared.stop.load(Ordering::Relaxed);
        barrier.wait();
        if stopping {
            break;
        }
    }
    (quiescent, ticks)
}

/// The service variant of the free-running driver: poll the board on the
/// millisecond clock, run the epoch state machine, stop when every epoch
/// has finalized (or on error / stall / the clock limit).
fn drive_service_free(
    shared: &SharedRun,
    svc: &mut ServiceTracker,
    max_duration: Duration,
) -> bool {
    svc.board.set_now(0);
    svc.admit(0);
    let mut quiescent = false;
    loop {
        thread::sleep(Duration::from_millis(5));
        let now = shared.elapsed().as_millis() as u64;
        svc.board.set_now(now);
        if shared.elapsed() >= max_duration || shared.has_error() {
            break;
        }
        if let Err(error) = svc.step(now, now) {
            shared.record_error(error);
            break;
        }
        if svc.done() {
            quiescent = true;
            break;
        }
    }
    shared.stop.store(true, Ordering::Relaxed);
    quiescent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use agossip_core::{percentile, Ears, Tears, Trivial, TrivialMessage};
    use agossip_sim::ProcessId;
    use std::fmt;

    fn assert_epochs_ok(report: &ServiceReport, epochs: u64) {
        assert!(report.quiescent, "service did not finalize all epochs");
        assert_eq!(report.epochs.len(), epochs as usize);
        for (i, e) in report.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i as u64, "epochs must finalize in order");
            assert!(
                e.check.all_ok(),
                "epoch {i} failed its check: {:?}",
                e.check
            );
            assert!(e.settled_at >= e.opened_at);
            assert!(e.finalized_at >= e.settled_at);
        }
    }

    #[test]
    fn closed_loop_lockstep_service_finalizes_every_epoch() {
        let epochs = 12;
        let config = ServiceConfig::lockstep(16, 2, 0x5EED_0001, epochs)
            .with_window(4)
            .with_mode(LoopMode::Closed { in_flight: 3 });
        let report = run_service(&config, &ChannelTransport, Trivial::new).expect("service run");
        assert_epochs_ok(&report, epochs);
        assert!(report.max_open >= 2, "closed loop must pipeline epochs");
        assert_eq!(report.decode_errors, 0);
        assert_eq!(
            report.stale_drops, 0,
            "lockstep service must not race frames"
        );
    }

    #[test]
    fn open_loop_lockstep_service_finalizes_every_epoch() {
        let epochs = 8;
        let config = ServiceConfig::lockstep(12, 2, 0x5EED_0002, epochs)
            .with_window(6)
            .with_mode(LoopMode::Open { period: 4 });
        let report = run_service(&config, &ChannelTransport, Ears::new).expect("service run");
        assert_epochs_ok(&report, epochs);
        assert!(report.max_open >= 2, "open loop at period 4 must pipeline");
    }

    #[test]
    fn majority_service_checks_tears_epochs() {
        let epochs = 4;
        let config =
            ServiceConfig::lockstep(24, 3, 0x5EED_0003, epochs).with_spec(GossipSpec::Majority);
        let report = run_service(&config, &ChannelTransport, Tears::new).expect("service run");
        assert_epochs_ok(&report, epochs);
    }

    #[test]
    fn service_tolerates_crashes_within_budget() {
        let epochs = 6;
        let crashes: Vec<(ProcessId, u64)> =
            (0..3).map(|i| (ProcessId(15 - i), 10 + i as u64)).collect();
        let config = ServiceConfig::new(
            LiveConfig::lockstep(16, 4, 0x5EED_0004).with_crashes(crashes),
            epochs,
        );
        let report = run_service(&config, &ChannelTransport, Trivial::new).expect("service run");
        assert_epochs_ok(&report, epochs);
    }

    #[test]
    fn lockstep_service_reports_are_identical_across_threadings() {
        let run = |threading: Threading| {
            let mut config = ServiceConfig::lockstep(12, 2, 0x5EED_0005, 8).with_window(4);
            config.live.threading = threading;
            run_service(&config, &ChannelTransport, Trivial::new).expect("service run")
        };
        let base = run(Threading::PerProcess);
        for reactors in [1usize, 3] {
            let other = run(Threading::Reactor { reactors });
            assert_eq!(base.epochs.len(), other.epochs.len());
            for (a, b) in base.epochs.iter().zip(&other.epochs) {
                assert_eq!(a.epoch, b.epoch);
                assert_eq!(a.opened_at, b.opened_at);
                assert_eq!(a.settled_at, b.settled_at);
                assert_eq!(a.finalized_at, b.finalized_at);
            }
            assert_eq!(base.messages_sent, other.messages_sent);
            assert_eq!(base.steps, other.steps);
            assert_eq!(base.ticks, other.ticks);
            assert_eq!(base.stale_drops, other.stale_drops);
        }
    }

    #[test]
    fn free_running_service_finalizes_every_epoch() {
        let epochs = 5;
        let config = ServiceConfig::new(LiveConfig::free_running(8, 1, 0x5EED_0006), epochs)
            .with_window(4)
            .with_stall_limit(15_000);
        let report = run_service(&config, &ChannelTransport, Trivial::new).expect("service run");
        assert_epochs_ok(&report, epochs);
    }

    /// An engine that never quiesces and keeps sending: every epoch it
    /// inhabits must trip the per-epoch stall detector.
    struct Chatty {
        ctx: GossipCtx,
        rumors: RumorSet,
    }

    impl fmt::Debug for Chatty {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Chatty")
        }
    }

    impl GossipEngine for Chatty {
        type Msg = TrivialMessage;

        fn deliver(&mut self, _from: ProcessId, _msg: TrivialMessage) {}

        fn local_step(&mut self, out: &mut Vec<(ProcessId, TrivialMessage)>) {
            let to = ProcessId((self.ctx.pid.index() + 1) % self.ctx.n);
            out.push((
                to,
                TrivialMessage {
                    rumor: self.ctx.rumor,
                },
            ));
        }

        fn pid(&self) -> ProcessId {
            self.ctx.pid
        }

        fn rumors(&self) -> &RumorSet {
            &self.rumors
        }

        fn is_quiescent(&self) -> bool {
            false
        }

        fn steps_taken(&self) -> u64 {
            0
        }
    }

    #[test]
    fn stalled_epoch_raises_typed_error() {
        let config = ServiceConfig::lockstep(4, 1, 0x5EED_0007, 2).with_stall_limit(40);
        let result = run_service(&config, &ChannelTransport, |ctx| Chatty {
            ctx,
            rumors: RumorSet::new(),
        });
        match result {
            Err(RuntimeError::EpochStalled { epoch, stalled_for }) => {
                assert_eq!(epoch, 0);
                assert!(stalled_for > 40);
            }
            other => panic!("expected EpochStalled, got {other:?}"),
        }
    }

    #[test]
    fn invalid_service_configs_are_rejected() {
        let base = ServiceConfig::lockstep(8, 1, 1, 4);
        assert_eq!(
            base.clone().with_window(0).validate(),
            Err(ConfigError::ZeroWindow)
        );
        let mut none = base.clone();
        none.epochs = 0;
        assert_eq!(none.validate(), Err(ConfigError::ZeroEpochs));
        let mut short = ServiceConfig::new(LiveConfig::free_running(8, 1, 1), 4);
        short.live.pacing = Pacing::FreeRunning {
            max_delay: Duration::from_millis(50),
            max_step_pause: Duration::from_millis(1),
            quiet_period: Duration::from_millis(50),
            max_duration: Duration::from_secs(5),
        };
        assert!(matches!(
            short.validate(),
            Err(ConfigError::QuietPeriodTooShort { .. })
        ));
        let bad_live = ServiceConfig::new(LiveConfig::lockstep(4, 4, 1), 4);
        assert!(matches!(
            bad_live.validate(),
            Err(ConfigError::FailureBudget { .. })
        ));
    }

    #[test]
    fn settle_latency_percentiles_are_computable() {
        let config = ServiceConfig::lockstep(12, 1, 0x5EED_0008, 8);
        let report = run_service(&config, &ChannelTransport, Trivial::new).expect("service run");
        let latencies = report.settle_latencies();
        assert_eq!(latencies.len(), 8);
        let p50 = percentile(&latencies, 50.0);
        let p99 = percentile(&latencies, 99.0);
        assert!(p50 <= p99);
        assert!(p99 > 0, "trivial gossip needs at least one tick to settle");
    }
}
