//! # agossip-runtime
//!
//! A thread-per-process runtime for the gossip protocols in `agossip-core`.
//!
//! The discrete-event simulator in `agossip-sim` is the right tool for
//! measuring complexity (it controls and counts every step), but it is still
//! a single-threaded loop. This crate demonstrates that the very same
//! protocol state machines are genuinely *asynchronous* algorithms: each
//! process runs on its own OS thread with its own pacing, messages travel
//! through channels with randomized injected delays, and processes may be
//! crashed mid-execution — there is no global clock and no round structure
//! anywhere.
//!
//! The runtime mirrors the paper's model:
//!
//! * a *local step* is one iteration of a node's loop (deliver whatever has
//!   arrived and is past its injected delay, compute, send);
//! * the injected per-message delay bound plays the role of `d`;
//! * the per-node pacing jitter plays the role of `δ`;
//! * crash injection halts a thread permanently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::{run_threaded, RuntimeConfig, RuntimeReport};
