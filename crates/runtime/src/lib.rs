//! # agossip-runtime
//!
//! A live message-passing runtime for the gossip protocols in
//! `agossip-core`: real OS threads exchanging real byte frames over real
//! transports.
//!
//! The discrete-event simulator in `agossip-sim` is the right tool for
//! measuring complexity (it controls and counts every step), but it is a
//! single-threaded loop moving typed values. This crate runs the very same
//! protocol state machines as a *system*:
//!
//! * every message crosses a [`transport::Transport`] as encoded bytes
//!   (the [`agossip_core::codec`] wire format) — in-process channels, or
//!   loopback TCP / Unix-domain sockets with kernel-level framing;
//! * each process runs an event loop that decodes frames, drives the
//!   engine and encodes its output — either one OS thread per process, or
//!   many processes multiplexed onto a handful of [`reactor`] threads
//!   ([`driver::Threading`]);
//! * the [`driver::LiveDriver`-style entry point][driver::run_live] runs
//!   `n` concurrent processes to gossip completion under either
//!   deterministic lockstep pacing (bit-identical per seed, for any
//!   threading and reactor count) or free-running pacing (real scheduling
//!   nondeterminism);
//! * free-running time is read through the [`clock::Clock`] trait, so
//!   tests can drive delays from a [`clock::FakeClock`] instead of real
//!   sleeps ([`driver::run_live_with_clock`]);
//! * crash injection kills live processes mid-run, mirroring the
//!   simulator's adversary.
//!
//! The runtime mirrors the paper's model:
//!
//! * a *local step* is one iteration of a node's loop (deliver whatever has
//!   arrived and is past its injected delay, compute, send);
//! * the injected per-message delay bound plays the role of `d`;
//! * the per-node pacing jitter plays the role of `δ`;
//! * crash injection halts a node permanently.
//!
//! The original [`harness::run_threaded`] API survives as a veneer over
//! [`driver::run_live`].

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms, unreachable_pub)]
#![warn(missing_docs)]

pub mod clock;
pub mod driver;
mod error;
mod event_loop;
pub mod harness;
pub mod reactor;
pub mod service;
pub mod transport;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use driver::{
    run_live, run_live_with_clock, LiveConfig, LiveConfigBuilder, LiveReport, Pacing, Threading,
};
pub use error::{ConfigError, RuntimeError};
pub use event_loop::RunStats;
pub use harness::{run_threaded, RuntimeConfig, RuntimeReport};
pub use service::{run_service, run_service_with_clock, EpochReport, ServiceConfig, ServiceReport};
pub use transport::{
    frame_bytes, ChannelTransport, Endpoint, FrameBuf, RawFrame, SendOutcome, SocketKind,
    SocketTransport, Transport, MAX_FRAME_BYTES,
};
