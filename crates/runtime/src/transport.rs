//! Byte transports: how encoded frames move between live processes.
//!
//! A [`Transport`] opens one [`Endpoint`] per process; each endpoint is owned
//! by exactly one process thread and moves *bytes*, never typed messages —
//! every payload crossing a transport has been through the
//! [`agossip_core::codec`] byte encoder, so the live runtime genuinely
//! exercises the wire format.
//!
//! Two families are provided:
//!
//! * [`ChannelTransport`] — in-process crossbeam channels carrying
//!   length-delimited byte frames. No syscalls, no partial reads: the
//!   fastest substrate, and the reference one for deterministic (lockstep)
//!   runs.
//! * [`SocketTransport`] — loopback TCP or Unix-domain stream sockets with
//!   an explicit framing layer (`varint sender ++ varint length ++ payload`).
//!   Every frame really crosses the kernel: partial reads, connection
//!   establishment and peer-death are all real.
//!
//! ## Failure semantics
//!
//! A send to a peer that cannot be reached (its endpoint was dropped, its
//! thread exited, its listener refused the connection) is **message loss,
//! not an error**: in the paper's crash-stop model a message to a crashed
//! process is simply never delivered. Only errors that do not have this
//! interpretation (e.g. the local listener breaking) are surfaced.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use agossip_core::codec::{read_varint, write_varint, CodecError};
use agossip_sim::ProcessId;

use crate::error::{io_err, RuntimeError};

/// Hard cap on one frame's payload, so a corrupt length header cannot make
/// the receiver buffer gigabytes. Far above any frame the protocols emit.
pub const MAX_FRAME_BYTES: u64 = 1 << 24;

/// Longest out-of-line frame prefix [`Endpoint::send_shared`] accepts: two
/// LEB128 varints of at most 10 bytes each (the lockstep tick/seq stamp).
pub const MAX_HEAD_BYTES: usize = 20;

/// Inline storage for a frame's per-destination prefix, so the shared-body
/// fast path never heap-allocates for the ≤ 20-byte head.
#[derive(Debug, Clone, Copy)]
struct HeadBuf {
    bytes: [u8; MAX_HEAD_BYTES],
    len: u8,
}

impl HeadBuf {
    const EMPTY: HeadBuf = HeadBuf {
        bytes: [0; MAX_HEAD_BYTES],
        len: 0,
    };

    /// Copies `head` inline; `None` if it exceeds [`MAX_HEAD_BYTES`].
    fn new(head: &[u8]) -> Option<HeadBuf> {
        if head.len() > MAX_HEAD_BYTES {
            return None;
        }
        let len = u8::try_from(head.len()).ok()?;
        let mut bytes = [0u8; MAX_HEAD_BYTES];
        bytes[..head.len()].copy_from_slice(head);
        Some(HeadBuf { bytes, len })
    }

    fn as_slice(&self) -> &[u8] {
        self.bytes.get(..usize::from(self.len)).unwrap_or(&[])
    }
}

/// Body bytes of one frame: uniquely owned, or one encoded broadcast body
/// shared (by reference count) across every destination's frame.
#[derive(Debug, Clone)]
pub enum FrameBody {
    /// Bytes owned by this frame alone.
    Owned(Vec<u8>),
    /// A broadcast body shared across destinations.
    Shared(Arc<[u8]>),
}

impl FrameBody {
    /// The body bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            FrameBody::Owned(bytes) => bytes,
            FrameBody::Shared(bytes) => bytes,
        }
    }
}

/// One received frame: who sent it and its (still encoded) payload, split
/// into a small per-destination head and a possibly shared body — the
/// logical payload is `head ++ body`. Frames reassembled off a byte stream
/// always have an empty head.
#[derive(Debug, Clone)]
pub struct RawFrame {
    /// The sending process.
    pub from: ProcessId,
    head: HeadBuf,
    body: FrameBody,
}

impl RawFrame {
    /// A frame whose payload is one owned byte buffer (empty head).
    pub fn owned(from: ProcessId, payload: Vec<u8>) -> Self {
        RawFrame {
            from,
            head: HeadBuf::EMPTY,
            body: FrameBody::Owned(payload),
        }
    }

    /// The per-destination prefix bytes (empty unless the frame came off a
    /// shared-body fast path).
    pub fn head(&self) -> &[u8] {
        self.head.as_slice()
    }

    /// The body bytes (the whole payload when the head is empty).
    pub fn body(&self) -> &[u8] {
        self.body.as_slice()
    }

    /// Consumes the frame, keeping its body allocation (shared or owned).
    pub fn into_body(self) -> FrameBody {
        self.body
    }

    /// The full logical payload, concatenated into one buffer. Allocates;
    /// meant for tests and cold paths.
    pub fn payload_to_vec(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.head().len() + self.body().len());
        payload.extend_from_slice(self.head());
        payload.extend_from_slice(self.body());
        payload
    }
}

impl PartialEq for RawFrame {
    fn eq(&self, other: &Self) -> bool {
        // Logical payload equality: where the head/body split falls (and
        // whether the body is shared) is a transport detail.
        self.from == other.from
            && self
                .head()
                .iter()
                .chain(self.body())
                .eq(other.head().iter().chain(other.body()))
    }
}

impl Eq for RawFrame {}

/// What became of one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Handed to the transport; the peer can (eventually) read it.
    Sent,
    /// Dropped because the peer is unreachable (crashed): message loss.
    /// Reported — not swallowed — so callers that account for every frame
    /// (the lockstep settle handshake) can book it as consumed.
    Lost,
}

/// One process's handle on a transport.
///
/// `poll_into` is non-blocking: it drains whatever has arrived and returns.
/// The event loop owns pacing; the transport owns bytes.
pub trait Endpoint: Send + 'static {
    /// The process this endpoint belongs to.
    fn pid(&self) -> ProcessId;

    /// Sends one frame to `to`. An unreachable peer is message loss
    /// ([`SendOutcome::Lost`]), not an error (see the module docs).
    ///
    /// A `Sent` outcome means the transport *accepted* the frame; endpoints
    /// with local write queues (sockets) may still be holding the bytes.
    /// Event loops must keep calling [`Endpoint::flush`] until the run is
    /// over to push queued bytes out.
    fn send(&mut self, to: ProcessId, payload: &[u8]) -> Result<SendOutcome, RuntimeError>;

    /// Sends one frame whose logical payload is `head ++ body`, where
    /// `body` is typically one encoded broadcast body shared across many
    /// destinations. Endpoints that can hand the receiver the shared buffer
    /// itself (channels) override this so a broadcast costs one reference-
    /// count bump per destination instead of one payload copy; the default
    /// concatenates and delegates to [`Endpoint::send`].
    fn send_shared(
        &mut self,
        to: ProcessId,
        head: &[u8],
        body: &Arc<[u8]>,
    ) -> Result<SendOutcome, RuntimeError> {
        let mut payload = Vec::with_capacity(head.len() + body.len());
        payload.extend_from_slice(head);
        payload.extend_from_slice(body);
        self.send(to, &payload)
    }

    /// Appends every frame that has fully arrived to `out`, without
    /// blocking.
    fn poll_into(&mut self, out: &mut Vec<RawFrame>) -> Result<(), RuntimeError>;

    /// Makes non-blocking progress on locally queued outbound bytes.
    ///
    /// Returns the number of previously `Sent` frames now known to be lost
    /// (their peer died with the frames still queued). Callers that account
    /// for every frame — the lockstep settle handshake — must book that
    /// count as consumed, exactly as they do for a [`SendOutcome::Lost`]
    /// send. Endpoints without write queues (channels) have nothing to do.
    fn flush(&mut self) -> Result<u64, RuntimeError> {
        Ok(0)
    }
}

/// A family of endpoints that can be opened as a connected clique.
pub trait Transport {
    /// The endpoint type this transport hands each process.
    type Endpoint: Endpoint;

    /// Short name for reports ("channel", "tcp", "uds").
    fn name(&self) -> &'static str;

    /// Opens `n` mutually connected endpoints, one per process id `0..n`.
    fn open(&self, n: usize) -> Result<Vec<Self::Endpoint>, RuntimeError>;
}

// ---------------------------------------------------------------------------
// Channel transport
// ---------------------------------------------------------------------------

/// In-process transport over crossbeam channels (one queue per receiver).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelTransport;

/// Endpoint of the [`ChannelTransport`].
pub struct ChannelEndpoint {
    pid: ProcessId,
    peers: Vec<Sender<RawFrame>>,
    rx: Receiver<RawFrame>,
}

impl Endpoint for ChannelEndpoint {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    fn send(&mut self, to: ProcessId, payload: &[u8]) -> Result<SendOutcome, RuntimeError> {
        // A send error means the receiver dropped its endpoint (the process
        // crashed): the message is lost, exactly as the model prescribes.
        match self.peers[to.index()].send(RawFrame::owned(self.pid, payload.to_vec())) {
            Ok(()) => Ok(SendOutcome::Sent),
            Err(_) => Ok(SendOutcome::Lost),
        }
    }

    fn send_shared(
        &mut self,
        to: ProcessId,
        head: &[u8],
        body: &Arc<[u8]>,
    ) -> Result<SendOutcome, RuntimeError> {
        let Some(head) = HeadBuf::new(head) else {
            // Oversized head (never produced by the runtime): fall back to
            // the concatenating path.
            let mut payload = Vec::with_capacity(head.len() + body.len());
            payload.extend_from_slice(head);
            payload.extend_from_slice(body);
            return self.send(to, &payload);
        };
        match self.peers[to.index()].send(RawFrame {
            from: self.pid,
            head,
            body: FrameBody::Shared(Arc::clone(body)),
        }) {
            Ok(()) => Ok(SendOutcome::Sent),
            Err(_) => Ok(SendOutcome::Lost),
        }
    }

    fn poll_into(&mut self, out: &mut Vec<RawFrame>) -> Result<(), RuntimeError> {
        loop {
            match self.rx.try_recv() {
                Ok(frame) => out.push(frame),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return Ok(()),
            }
        }
    }
}

impl Transport for ChannelTransport {
    type Endpoint = ChannelEndpoint;

    fn name(&self) -> &'static str {
        "channel"
    }

    fn open(&self, n: usize) -> Result<Vec<ChannelEndpoint>, RuntimeError> {
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded()).unzip();
        Ok(receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| ChannelEndpoint {
                pid: ProcessId(i),
                peers: senders.clone(),
                rx,
            })
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Socket transport (loopback TCP / Unix-domain)
// ---------------------------------------------------------------------------

/// Which socket family a [`SocketTransport`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketKind {
    /// Loopback TCP (`127.0.0.1`, ephemeral ports).
    Tcp,
    /// Unix-domain stream sockets in a per-run temporary directory.
    #[cfg(unix)]
    Unix,
}

/// Loopback socket transport: every frame crosses the kernel.
#[derive(Debug, Clone, Copy)]
pub struct SocketTransport {
    kind: SocketKind,
}

impl SocketTransport {
    /// A loopback TCP transport.
    pub fn tcp() -> Self {
        SocketTransport {
            kind: SocketKind::Tcp,
        }
    }

    /// A Unix-domain-socket transport.
    #[cfg(unix)]
    pub fn uds() -> Self {
        SocketTransport {
            kind: SocketKind::Unix,
        }
    }
}

enum AnyListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum AnyStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

#[derive(Clone)]
enum PeerAddr {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl AnyListener {
    fn accept(&self) -> std::io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| AnyStream::Tcp(s)),
            #[cfg(unix)]
            AnyListener::Unix(l) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
        }
    }
}

impl AnyStream {
    fn connect(addr: &PeerAddr) -> std::io::Result<AnyStream> {
        match addr {
            PeerAddr::Tcp(addr) => TcpStream::connect(addr).map(AnyStream::Tcp),
            #[cfg(unix)]
            PeerAddr::Unix(path) => UnixStream::connect(path).map(AnyStream::Unix),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    fn read_some(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
        }
    }

    fn write_some(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(bytes),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(bytes),
        }
    }
}

/// True if an I/O error means "the peer is gone" — which the model reads as
/// message loss, not failure.
fn is_peer_death(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::NotFound
    )
}

/// Deletes the per-run UDS directory when the last endpoint drops.
struct TempDirGuard {
    path: PathBuf,
}

impl Drop for TempDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Incremental frame extractor over a byte stream.
///
/// Wire framing: `varint sender ++ varint length ++ payload`. Feed arbitrary
/// byte chunks in with [`FrameBuf::extend`] — one byte at a time, split mid-
/// header, several frames coalesced — and pull complete frames out with
/// [`FrameBuf::next_frame`]. This is the reassembly layer both the socket
/// endpoints and the reactor read path share; it never panics on corrupt
/// input (typed errors only), which the segmentation proptests pin down.
#[derive(Debug, Default)]
pub struct FrameBuf {
    data: VecDeque<u8>,
    scratch: Vec<u8>,
}

impl FrameBuf {
    /// An empty reassembly buffer.
    pub fn new() -> Self {
        FrameBuf {
            data: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    /// Appends raw stream bytes (any segmentation).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.data.extend(bytes);
    }

    /// Bytes buffered but not yet extracted as frames.
    pub fn buffered_len(&self) -> usize {
        self.data.len()
    }

    /// Extracts the next complete frame, or `None` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<RawFrame>, RuntimeError> {
        // Parse the two varint headers from a contiguous copy of the front
        // (headers are ≤ 20 bytes).
        self.scratch.clear();
        self.scratch.extend(self.data.iter().take(20).copied());
        let (from, from_len) = match read_varint(&self.scratch) {
            Ok(v) => v,
            Err(CodecError::Truncated) if self.data.len() < 20 => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let (len, len_len) = match read_varint(&self.scratch[from_len..]) {
            Ok(v) => v,
            Err(CodecError::Truncated) if self.data.len() < 20 => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if len > MAX_FRAME_BYTES {
            return Err(CodecError::IdOutOfRange(len).into());
        }
        if from >= u64::from(u32::MAX) {
            return Err(CodecError::IdOutOfRange(from).into());
        }
        let len = usize::try_from(len).map_err(|_| CodecError::IdOutOfRange(len))?;
        let from = usize::try_from(from).map_err(|_| CodecError::IdOutOfRange(from))?;
        let header = from_len + len_len;
        if (self.data.len() - header) < len {
            return Ok(None);
        }
        self.data.drain(..header);
        let payload: Vec<u8> = self.data.drain(..len).collect();
        Ok(Some(RawFrame::owned(ProcessId(from), payload)))
    }
}

/// Prepends the stream framing header to a payload: the encoding side of
/// [`FrameBuf`]'s wire format.
pub fn frame_bytes(from: ProcessId, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 12);
    write_varint(&mut frame, from.index() as u64);
    write_varint(&mut frame, payload.len() as u64);
    frame.extend_from_slice(payload);
    frame
}

struct Inbound {
    stream: AnyStream,
    buf: FrameBuf,
    closed: bool,
}

/// Soft cap on bytes queued toward one peer. A send that would leave the
/// queue above the cap spins on non-blocking flushes (yielding between
/// attempts) until the kernel drains it below the cap — per-connection
/// backpressure instead of unbounded memory growth.
const MAX_BACKLOG_BYTES: usize = 4 * 1024 * 1024;

/// How many yield-then-flush attempts a backpressured send makes before
/// concluding the connection is wedged and surfacing an error. Loopback
/// kernels drain in microseconds; hitting this means the receiver stopped
/// polling entirely.
const MAX_BACKPRESSURE_SPINS: u32 = 1_000_000;

/// A write queue whose consumed prefix exceeds this is compacted (the
/// unsent tail moved to the front) before the next frame is appended,
/// bounding buffer growth while keeping compaction amortized-cheap.
const COMPACT_QUEUE_BYTES: usize = 64 * 1024;

/// One established outbound connection with its write queue: frames are
/// appended into one contiguous buffer (`buf[written..]` is unsent) so a
/// single non-blocking write pushes many coalesced frames per syscall.
/// Per-frame lengths ride alongside for loss accounting when the peer dies
/// with frames still queued.
struct OutboundConn {
    stream: AnyStream,
    buf: Vec<u8>,
    written: usize,
    frame_lens: VecDeque<usize>,
    /// Bytes of the front queued frame already written.
    front_written: usize,
}

impl OutboundConn {
    fn new(stream: AnyStream) -> Self {
        OutboundConn {
            stream,
            buf: Vec::new(),
            written: 0,
            frame_lens: VecDeque::new(),
            front_written: 0,
        }
    }

    /// Bytes queued but not yet handed to the kernel.
    fn queued_bytes(&self) -> usize {
        self.buf.len() - self.written
    }

    /// Appends one frame (`framing header ++ head ++ body`) to the queue,
    /// compacting the already-written prefix away first when it has grown.
    fn enqueue(&mut self, from: ProcessId, head: &[u8], body: &[u8]) {
        if self.written == self.buf.len() {
            self.buf.clear();
            self.written = 0;
        } else if self.written > COMPACT_QUEUE_BYTES {
            self.buf.drain(..self.written);
            self.written = 0;
        }
        let start = self.buf.len();
        write_varint(&mut self.buf, from.index() as u64);
        write_varint(&mut self.buf, (head.len() + body.len()) as u64);
        self.buf.extend_from_slice(head);
        self.buf.extend_from_slice(body);
        self.frame_lens.push_back(self.buf.len() - start);
    }

    /// Books `k` freshly written bytes against the per-frame lengths.
    fn advance(&mut self, mut k: usize) {
        self.written += k;
        while let Some(&len) = self.frame_lens.front() {
            let remaining = len - self.front_written;
            if k < remaining {
                self.front_written += k;
                break;
            }
            k -= remaining;
            self.front_written = 0;
            self.frame_lens.pop_front();
        }
    }
}

/// Endpoint of the [`SocketTransport`].
pub struct SocketEndpoint {
    pid: ProcessId,
    listener: AnyListener,
    peers: Vec<PeerAddr>,
    outbound: Vec<Option<OutboundConn>>,
    /// Peers whose connections have failed: further sends are dropped
    /// without reconnect attempts.
    dead: Vec<bool>,
    /// Frames accepted as `Sent` whose peer has since died with the frame
    /// still queued; handed to the caller (and reset) by `flush`.
    pending_lost: u64,
    inbound: Vec<Inbound>,
    read_buf: Vec<u8>,
    _cleanup: Option<Arc<TempDirGuard>>,
}

impl SocketEndpoint {
    /// Non-blocking write progress on one peer's queue. Peer death discards
    /// the queue into `pending_lost`; `WouldBlock` leaves the rest queued.
    fn flush_slot(&mut self, slot: usize) -> Result<(), RuntimeError> {
        let Some(conn) = self.outbound[slot].as_mut() else {
            return Ok(());
        };
        loop {
            if conn.written == conn.buf.len() {
                conn.buf.clear();
                conn.written = 0;
                return Ok(());
            }
            match conn.stream.write_some(&conn.buf[conn.written..]) {
                Ok(0) => {
                    // A zero-byte write on a non-empty buffer: the socket
                    // can take nothing; treat like WouldBlock.
                    return Ok(());
                }
                Ok(k) => conn.advance(k),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if is_peer_death(&e) => {
                    // Every queued frame (including a partially written
                    // front) was accepted as Sent and will never arrive.
                    self.pending_lost += conn.frame_lens.len() as u64;
                    self.outbound[slot] = None;
                    self.dead[slot] = true;
                    return Ok(());
                }
                Err(e) => return Err(io_err("writing frame")(e)),
            }
        }
    }

    /// Bytes currently queued toward `slot`.
    fn backlog_bytes(&self, slot: usize) -> usize {
        self.outbound[slot]
            .as_ref()
            .map_or(0, |conn| conn.queued_bytes())
    }

    /// Queues `head ++ body` toward `to` behind the stream framing header,
    /// then makes opportunistic flush progress under the backpressure cap.
    fn send_parts(
        &mut self,
        to: ProcessId,
        head: &[u8],
        body: &[u8],
    ) -> Result<SendOutcome, RuntimeError> {
        let slot = to.index();
        if self.dead[slot] {
            return Ok(SendOutcome::Lost);
        }
        if self.outbound[slot].is_none() {
            match AnyStream::connect(&self.peers[slot]) {
                Ok(stream) => {
                    stream
                        .set_nonblocking(true)
                        .map_err(io_err("configuring outbound stream"))?;
                    self.outbound[slot] = Some(OutboundConn::new(stream));
                }
                Err(e) if is_peer_death(&e) => {
                    self.dead[slot] = true;
                    return Ok(SendOutcome::Lost);
                }
                Err(e) => return Err(io_err("connecting to peer")(e)),
            }
        }
        let Some(conn) = self.outbound[slot].as_mut() else {
            // Connected just above; a lost send is the safe degradation if
            // that invariant ever broke.
            return Ok(SendOutcome::Lost);
        };
        conn.enqueue(self.pid, head, body);
        // Opportunistic drain keeps queues shallow on an unclogged socket.
        self.flush_slot(slot)?;
        // Backpressure: refuse to let one slow peer absorb unbounded memory.
        let mut spins = 0u32;
        while self.backlog_bytes(slot) > MAX_BACKLOG_BYTES {
            spins += 1;
            if spins > MAX_BACKPRESSURE_SPINS {
                return Err(io_err("write backlog stuck above cap")(
                    std::io::Error::new(std::io::ErrorKind::WouldBlock, "peer not draining"),
                ));
            }
            std::thread::yield_now();
            self.flush_slot(slot)?;
        }
        Ok(SendOutcome::Sent)
    }
}

impl Endpoint for SocketEndpoint {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    fn send(&mut self, to: ProcessId, payload: &[u8]) -> Result<SendOutcome, RuntimeError> {
        self.send_parts(to, &[], payload)
    }

    fn send_shared(
        &mut self,
        to: ProcessId,
        head: &[u8],
        body: &Arc<[u8]>,
    ) -> Result<SendOutcome, RuntimeError> {
        // The shared body is appended straight into the connection's write
        // buffer behind its head: no intermediate concatenation.
        self.send_parts(to, head, body)
    }

    fn flush(&mut self) -> Result<u64, RuntimeError> {
        for slot in 0..self.outbound.len() {
            self.flush_slot(slot)?;
        }
        Ok(std::mem::take(&mut self.pending_lost))
    }

    fn poll_into(&mut self, out: &mut Vec<RawFrame>) -> Result<(), RuntimeError> {
        // Accept any newly established inbound connections.
        loop {
            match self.listener.accept() {
                Ok(stream) => {
                    stream
                        .set_nonblocking(true)
                        .map_err(io_err("configuring accepted stream"))?;
                    self.inbound.push(Inbound {
                        stream,
                        buf: FrameBuf::new(),
                        closed: false,
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err("accepting connection")(e)),
            }
        }
        // Drain every inbound stream and extract complete frames.
        for conn in &mut self.inbound {
            loop {
                match conn.stream.read_some(&mut self.read_buf) {
                    Ok(0) => {
                        conn.closed = true;
                        break;
                    }
                    Ok(k) => conn.buf.extend(&self.read_buf[..k]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) if is_peer_death(&e) => {
                        conn.closed = true;
                        break;
                    }
                    Err(e) => return Err(io_err("reading frames")(e)),
                }
            }
            while let Some(frame) = conn.buf.next_frame()? {
                out.push(frame);
            }
        }
        // Closed connections have had their buffered frames extracted above;
        // an incomplete trailing frame on a dead connection is lost, which
        // is the correct model semantics for a sender that died mid-write.
        self.inbound.retain(|c| !c.closed);
        Ok(())
    }
}

static UDS_RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Transport for SocketTransport {
    type Endpoint = SocketEndpoint;

    fn name(&self) -> &'static str {
        match self.kind {
            SocketKind::Tcp => "tcp",
            #[cfg(unix)]
            SocketKind::Unix => "uds",
        }
    }

    fn open(&self, n: usize) -> Result<Vec<SocketEndpoint>, RuntimeError> {
        // Each kind assembles its listeners and addresses in one
        // self-contained branch, so the UDS branch owns its cleanup guard
        // directly instead of re-borrowing an `Option` per iteration.
        let (listeners, peers, cleanup) = match self.kind {
            SocketKind::Tcp => {
                let mut listeners = Vec::with_capacity(n);
                let mut peers = Vec::with_capacity(n);
                for _ in 0..n {
                    let listener =
                        TcpListener::bind("127.0.0.1:0").map_err(io_err("binding listener"))?;
                    listener
                        .set_nonblocking(true)
                        .map_err(io_err("configuring listener"))?;
                    peers.push(PeerAddr::Tcp(
                        listener
                            .local_addr()
                            .map_err(io_err("reading local addr"))?,
                    ));
                    listeners.push(AnyListener::Tcp(listener));
                }
                (listeners, peers, None)
            }
            #[cfg(unix)]
            SocketKind::Unix => {
                let dir = std::env::temp_dir().join(format!(
                    "agossip-uds-{}-{}",
                    std::process::id(),
                    UDS_RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&dir).map_err(io_err("creating UDS directory"))?;
                let guard = Arc::new(TempDirGuard { path: dir });
                let mut listeners = Vec::with_capacity(n);
                let mut peers = Vec::with_capacity(n);
                for i in 0..n {
                    let path = guard.path.join(format!("p{i}.sock"));
                    let listener =
                        UnixListener::bind(&path).map_err(io_err("binding UDS listener"))?;
                    listener
                        .set_nonblocking(true)
                        .map_err(io_err("configuring listener"))?;
                    peers.push(PeerAddr::Unix(path));
                    listeners.push(AnyListener::Unix(listener));
                }
                (listeners, peers, Some(guard))
            }
        };
        Ok(listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| SocketEndpoint {
                pid: ProcessId(i),
                listener,
                peers: peers.clone(),
                outbound: (0..n).map(|_| None).collect(),
                dead: vec![false; n],
                pending_lost: 0,
                inbound: Vec::new(),
                read_buf: vec![0u8; 16 * 1024],
                _cleanup: cleanup.clone(),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange<T: Transport>(transport: &T) {
        let mut endpoints = transport.open(3).unwrap();
        let mut c = endpoints.pop().unwrap();
        let mut b = endpoints.pop().unwrap();
        let mut a = endpoints.pop().unwrap();
        a.send(ProcessId(1), b"hello").unwrap();
        c.send(ProcessId(1), b"world").unwrap();
        a.send(ProcessId(2), b"x").unwrap();

        let mut got = Vec::new();
        // Socket delivery needs the connection handshake to complete; retry
        // the non-blocking poll briefly, flushing the senders' write queues.
        for _ in 0..200 {
            a.flush().unwrap();
            c.flush().unwrap();
            b.poll_into(&mut got).unwrap();
            if got.len() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        got.sort_by(|x, y| x.body().cmp(y.body()));
        assert_eq!(
            got,
            vec![
                RawFrame::owned(ProcessId(0), b"hello".to_vec()),
                RawFrame::owned(ProcessId(2), b"world".to_vec()),
            ]
        );
        let mut got_c = Vec::new();
        for _ in 0..200 {
            a.flush().unwrap();
            c.poll_into(&mut got_c).unwrap();
            if !got_c.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got_c[0].from, ProcessId(0));
        assert_eq!(got_c[0].body(), b"x");
    }

    fn exchange_shared<T: Transport>(transport: &T) {
        let mut endpoints = transport.open(2).unwrap();
        let mut b = endpoints.pop().unwrap();
        let mut a = endpoints.pop().unwrap();
        let body: Arc<[u8]> = Arc::from(&b"shared-broadcast-body"[..]);
        a.send_shared(ProcessId(1), b"hd", &body).unwrap();
        let mut got = Vec::new();
        for _ in 0..200 {
            a.flush().unwrap();
            b.poll_into(&mut got).unwrap();
            if !got.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, ProcessId(0));
        assert_eq!(got[0].payload_to_vec(), b"hdshared-broadcast-body".to_vec());
    }

    #[test]
    fn channel_send_shared_delivers_head_then_body() {
        exchange_shared(&ChannelTransport);
        // The channel fast path hands over the shared buffer itself.
        let mut endpoints = ChannelTransport.open(2).unwrap();
        let mut b = endpoints.pop().unwrap();
        let mut a = endpoints.pop().unwrap();
        let body: Arc<[u8]> = Arc::from(&b"body"[..]);
        a.send_shared(ProcessId(1), b"h", &body).unwrap();
        let mut got = Vec::new();
        b.poll_into(&mut got).unwrap();
        assert_eq!(got[0].head(), b"h");
        assert_eq!(got[0].body(), b"body");
        assert!(matches!(got[0].clone().into_body(), FrameBody::Shared(_)));
    }

    #[test]
    fn socket_send_shared_delivers_head_then_body() {
        exchange_shared(&SocketTransport::tcp());
    }

    #[test]
    fn channel_transport_exchanges_frames() {
        exchange(&ChannelTransport);
    }

    #[test]
    fn tcp_transport_exchanges_frames() {
        exchange(&SocketTransport::tcp());
    }

    #[cfg(unix)]
    #[test]
    fn uds_transport_exchanges_frames() {
        exchange(&SocketTransport::uds());
    }

    #[test]
    fn send_to_a_dropped_endpoint_is_message_loss() {
        let mut endpoints = ChannelTransport.open(2).unwrap();
        let dead = endpoints.pop().unwrap();
        let mut alive = endpoints.pop().unwrap();
        drop(dead);
        assert_eq!(
            alive.send(ProcessId(1), b"into the void").unwrap(),
            SendOutcome::Lost
        );
    }

    #[test]
    fn tcp_send_to_a_dropped_endpoint_is_message_loss() {
        let mut endpoints = SocketTransport::tcp().open(2).unwrap();
        let dead = endpoints.pop().unwrap();
        let mut alive = endpoints.pop().unwrap();
        drop(dead);
        // Depending on kernel timing the first send may still be accepted
        // into a doomed socket; once the refusal is observed the peer is
        // marked dead. Either way no send errors.
        for _ in 0..3 {
            alive.send(ProcessId(1), b"into the void").unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let mut buf = FrameBuf::new();
        let frame = frame_bytes(ProcessId(7), b"payload bytes");
        let (a, b) = frame.split_at(3);
        buf.extend(a);
        assert_eq!(buf.next_frame().unwrap(), None);
        buf.extend(b);
        let got = buf.next_frame().unwrap().unwrap();
        assert_eq!(got.from, ProcessId(7));
        assert_eq!(got.body(), b"payload bytes");
        assert_eq!(buf.next_frame().unwrap(), None);

        // Two frames back to back, fed byte by byte.
        let mut buf = FrameBuf::new();
        let mut bytes = frame_bytes(ProcessId(1), b"one");
        bytes.extend(frame_bytes(ProcessId(2), b"two"));
        let mut got = Vec::new();
        for byte in bytes {
            buf.extend(&[byte]);
            while let Some(frame) = buf.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].body(), b"one");
        assert_eq!(got[1].from, ProcessId(2));
    }

    #[test]
    fn frame_buf_rejects_oversized_length_headers() {
        let mut buf = FrameBuf::new();
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 0);
        write_varint(&mut bytes, MAX_FRAME_BYTES + 1);
        buf.extend(&bytes);
        assert!(buf.next_frame().is_err());
    }
}
