//! The reactor: many multiplexed processes per event-loop thread.
//!
//! PR 5's live runtime spends one OS thread per process, which caps live
//! experiments near the machine's thread budget while the simulator already
//! verifies n = 65 536. A reactor inverts the ownership: one event-loop
//! thread owns *all* the endpoints of the processes pinned to it and drives
//! them with level-triggered readiness polling — every iteration it makes
//! non-blocking write progress (batched flushes against each connection's
//! backpressure queue), drains whatever bytes have arrived (the socket
//! endpoints reassemble frames incrementally through
//! [`crate::transport::FrameBuf`]), routes each decoded envelope into the
//! addressed process's in-memory inbox (a deadline-indexed pending heap),
//! and steps the engines whose turn has come. With `reactors = r`, process
//! `p` is pinned to reactor `p mod r` — a static assignment, so a process's
//! endpoint never migrates across threads and no locking is needed around
//! any per-process state.
//!
//! There is no epoll here on purpose: the workspace forbids `unsafe` and
//! vendors no FFI crates, so readiness is discovered by polling nonblocking
//! sockets rather than by kernel notification. For the loopback transports
//! this workspace runs on, the poll loop is the same O(endpoints) sweep an
//! epoll wakeup storm would degrade to; the architectural payoff — thousands
//! of processes on a handful of threads — is identical.
//!
//! ## Determinism
//!
//! Lockstep pacing survives multiplexing *bit-identically*: the settle
//! handshake (all frames consumed before anyone steps) and the
//! `(deliver_tick, from, seq)` delivery order are both independent of which
//! thread polls an endpoint or in which order slots are swept, and every
//! per-process RNG stream is derived from the process id exactly as in the
//! thread-per-process loops. A lockstep run at a given seed therefore
//! produces the same outcome across repeats, across reactor counts, and
//! across `Threading::PerProcess` vs `Threading::Reactor` — the golden-
//! digest regression test pins this.
//!
//! Free-running pacing keeps real nondeterminism: slots step when their
//! wall-clock (or [`crate::Clock`]-injected) deadlines expire, and the
//! interleaving across reactor threads is whatever the scheduler does.
//!
//! ## Crash injection
//!
//! Crashing a multiplexed process must not tear down the reactor that hosts
//! it. Under free-running pacing the reactor *deregisters* the slot: the
//! endpoint is dropped (peers' sends turn into message loss, exactly as if
//! the process's thread had exited) and the slot is skipped from then on.
//! Under lockstep the slot becomes a zombie that keeps draining its
//! transport but delivers and sends nothing — the same observable semantics
//! as the thread-per-process zombie, preserving the settle invariant.

use std::collections::BinaryHeap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use agossip_core::codec::write_varint;
use agossip_core::{GossipEngine, WireCodec, WireDecodeView};
use agossip_sim::rng::{derive_seed, RngStream};
use agossip_sim::ProcessId;

use crate::event_loop::{
    free_frame_body, parse_lockstep_frame, NodeOutcome, PendingTick, PendingWall, SharedRun,
};
use crate::transport::{Endpoint, RawFrame, SendOutcome};

/// One process handed to a reactor: its engine, its endpoint, and its crash
/// point.
pub(crate) struct ReactorProc<G, E> {
    pub engine: G,
    pub endpoint: E,
    pub crash_after: Option<u64>,
}

/// Pins process `pid` to one of `reactors` event-loop threads.
pub(crate) fn reactor_of(pid: ProcessId, reactors: usize) -> usize {
    pid.index() % reactors.max(1)
}

/// How long an idle free-running reactor sleeps before its next sweep: long
/// enough not to burn a core, short next to the millisecond-scale pacing
/// bounds the configs use.
const IDLE_SWEEP_PAUSE: Duration = Duration::from_micros(100);

// ---------------------------------------------------------------------------
// Lockstep reactor
// ---------------------------------------------------------------------------

/// Per-slot state of one lockstep-multiplexed process: exactly the locals
/// of `run_lockstep_node`, hoisted into a struct so one thread can hold
/// many of them. The tick counter is reactor-wide (every slot is always at
/// the same tick — that is what the barrier enforces).
struct LockstepSlot<G: GossipEngine, E> {
    pid: ProcessId,
    engine: G,
    endpoint: E,
    crash_after: Option<u64>,
    rng: StdRng,
    pending: BinaryHeap<PendingTick>,
    body: Vec<u8>,
    shared_body: Arc<[u8]>,
    last_encoded: Option<G::Msg>,
    steps: u64,
    seq: u64,
    crashed: bool,
}

/// Runs one reactor thread's worth of lockstep slots until the driver
/// raises the stop flag. Mirrors `run_lockstep_node` phase for phase; the
/// barrier participant is the reactor thread, not the individual process.
pub(crate) fn run_lockstep_reactor<G, E>(
    procs: Vec<(ProcessId, ReactorProc<G, E>)>,
    seed: u64,
    d: u64,
    shared: &SharedRun,
    barrier: &Barrier,
) -> Vec<(ProcessId, NodeOutcome)>
where
    G: GossipEngine,
    G::Msg: WireCodec + WireDecodeView + PartialEq,
    E: Endpoint,
{
    let mut slots: Vec<LockstepSlot<G, E>> = procs
        .into_iter()
        .map(|(pid, p)| LockstepSlot {
            pid,
            engine: p.engine,
            endpoint: p.endpoint,
            crash_after: p.crash_after,
            rng: StdRng::seed_from_u64(derive_seed(seed ^ 0x11FE, RngStream::Process(pid))),
            pending: BinaryHeap::new(),
            body: Vec::new(),
            shared_body: Arc::new([]),
            last_encoded: None,
            steps: 0,
            seq: 0,
            crashed: false,
        })
        .collect();
    let mut frames: Vec<RawFrame> = Vec::new();
    let mut due: Vec<PendingTick> = Vec::new();
    let mut out: Vec<(ProcessId, G::Msg)> = Vec::new();
    let mut head: Vec<u8> = Vec::new();
    let mut tick = 0u64;

    'run: loop {
        // --- Settle: sweep every slot's transport in poll-only rounds
        // until the driver observes every sent frame consumed. -------------
        loop {
            for slot in slots.iter_mut() {
                match slot.endpoint.flush() {
                    Ok(lost) => {
                        shared
                            .stats
                            .frames_consumed
                            .fetch_add(lost, Ordering::Relaxed);
                    }
                    Err(e) => {
                        shared.record_error(e);
                        slot.crashed = true;
                    }
                }
                frames.clear();
                if let Err(e) = slot.endpoint.poll_into(&mut frames) {
                    shared.record_error(e);
                    slot.crashed = true;
                }
                shared
                    .stats
                    .frames_consumed
                    .fetch_add(frames.len() as u64, Ordering::Relaxed);
                if slot.crashed {
                    // Zombie: consumes and discards — see the module docs.
                    frames.clear();
                } else {
                    for frame in frames.drain(..) {
                        match parse_lockstep_frame(&frame) {
                            Ok((deliver_tick, msg_seq, msg_at)) => slot.pending.push(PendingTick {
                                deliver_tick,
                                from: frame.from,
                                seq: msg_seq,
                                body: frame.into_body(),
                                msg_at,
                            }),
                            Err(_) => {
                                shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
            barrier.wait(); // driver compares sent vs consumed
            barrier.wait(); // driver has published settled/stop
            if shared.stop.load(Ordering::Relaxed) {
                break 'run;
            }
            if shared.settled.load(Ordering::Relaxed) {
                break;
            }
        }

        // --- Step every slot, in pid order within this reactor. ----------
        for slot in slots.iter_mut() {
            let mut active = false;
            if !slot.crashed {
                due.clear();
                while slot.pending.peek().is_some_and(|p| p.deliver_tick <= tick) {
                    let Some(p) = slot.pending.pop() else { break };
                    due.push(p);
                }
                if !due.is_empty() {
                    // One view-decode walk per body, batched unions inside
                    // the engine; a frame that fails to decode counts as an
                    // error here and delivers nothing, exactly as when
                    // polling validated eagerly.
                    let errors = slot.engine.deliver_encoded(&due) as u64;
                    active = due.len() as u64 > errors;
                    shared
                        .stats
                        .decode_errors
                        .fetch_add(errors, Ordering::Relaxed);
                    shared
                        .stats
                        .messages_delivered
                        .fetch_add(due.len() as u64 - errors, Ordering::Relaxed);
                    due.clear();
                }
                if slot.crash_after.is_some_and(|limit| slot.steps >= limit) {
                    slot.crashed = true;
                    slot.pending.clear();
                } else {
                    out.clear();
                    slot.engine.local_step(&mut out);
                    slot.steps += 1;
                    for (to, msg) in out.drain(..) {
                        if slot.last_encoded.as_ref() != Some(&msg) {
                            slot.body.clear();
                            msg.encode_into(&mut slot.body);
                            slot.shared_body = Arc::from(slot.body.as_slice());
                            slot.last_encoded = Some(msg);
                        }
                        // `d ≥ 1` is guaranteed by `LiveConfig::validate`.
                        let delay = slot.rng.gen_range(1..=d);
                        head.clear();
                        write_varint(&mut head, tick + delay);
                        write_varint(&mut head, slot.seq);
                        slot.seq += 1;
                        active = true;
                        shared.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
                        shared
                            .stats
                            .bytes_sent
                            .fetch_add(slot.body.len() as u64, Ordering::Relaxed);
                        match slot.endpoint.send_shared(to, &head, &slot.shared_body) {
                            Ok(SendOutcome::Sent) => {}
                            Ok(SendOutcome::Lost) => {
                                shared.stats.frames_consumed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                shared.record_error(e);
                                slot.crashed = true;
                                break;
                            }
                        }
                    }
                }
            }
            let quiet =
                slot.crashed || (!active && slot.pending.is_empty() && slot.engine.is_quiescent());
            shared.quiet[slot.pid.index()].store(quiet, Ordering::Relaxed);
        }

        // --- Quiet check: driver inspects the flags between the barriers. -
        barrier.wait();
        barrier.wait();
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        tick += 1;
    }

    slots
        .into_iter()
        .map(|slot| {
            (
                slot.pid,
                NodeOutcome {
                    rumors: slot.engine.rumors().clone(),
                    steps: slot.steps,
                },
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Free-running reactor
// ---------------------------------------------------------------------------

/// Per-slot state of one free-running multiplexed process. The endpoint is
/// an `Option`: crash injection deregisters the slot by dropping it (see
/// the module docs), after which the slot is inert.
struct FreeSlot<G: GossipEngine, E> {
    pid: ProcessId,
    engine: G,
    endpoint: Option<E>,
    crash_after: Option<u64>,
    rng: StdRng,
    pending: BinaryHeap<PendingWall>,
    body: Vec<u8>,
    shared_body: Arc<[u8]>,
    last_encoded: Option<G::Msg>,
    arrival_seq: u64,
    steps: u64,
    /// The slot takes its next local step once the run clock passes this —
    /// the multiplexed replacement for the per-thread random step pause.
    next_step_at: Duration,
}

/// Runs one reactor thread's worth of free-running slots until the driver
/// raises the stop flag.
pub(crate) fn run_free_reactor<G, E>(
    procs: Vec<(ProcessId, ReactorProc<G, E>)>,
    seed: u64,
    max_delay: Duration,
    max_step_pause: Duration,
    shared: &SharedRun,
) -> Vec<(ProcessId, NodeOutcome)>
where
    G: GossipEngine,
    G::Msg: WireCodec + WireDecodeView + PartialEq,
    E: Endpoint,
{
    let max_delay_us = max_delay.as_micros().max(1) as u64;
    let max_pause_us = max_step_pause.as_micros().max(1) as u64;
    let mut slots: Vec<FreeSlot<G, E>> = procs
        .into_iter()
        .map(|(pid, p)| FreeSlot {
            pid,
            engine: p.engine,
            endpoint: Some(p.endpoint),
            crash_after: p.crash_after,
            rng: StdRng::seed_from_u64(derive_seed(seed ^ 0xA51C, RngStream::Process(pid))),
            pending: BinaryHeap::new(),
            body: Vec::new(),
            shared_body: Arc::new([]),
            last_encoded: None,
            arrival_seq: 0,
            steps: 0,
            next_step_at: Duration::ZERO,
        })
        .collect();
    let mut frames: Vec<RawFrame> = Vec::new();
    let mut due: Vec<PendingWall> = Vec::new();
    let mut out: Vec<(ProcessId, G::Msg)> = Vec::new();

    while !shared.stop.load(Ordering::Relaxed) {
        let mut any_active = false;
        for slot in slots.iter_mut() {
            let Some(endpoint) = slot.endpoint.as_mut() else {
                continue; // deregistered (crashed): inert, reactor unharmed
            };
            if slot.crash_after.is_some_and(|limit| slot.steps >= limit) {
                // Deregister: drop the endpoint so peers see message loss,
                // keep the reactor and its other slots running.
                slot.endpoint = None;
                slot.pending.clear();
                shared.quiet[slot.pid.index()].store(true, Ordering::Relaxed);
                continue;
            }

            match endpoint.flush() {
                Ok(lost) => {
                    shared
                        .stats
                        .frames_consumed
                        .fetch_add(lost, Ordering::Relaxed);
                }
                Err(e) => {
                    shared.record_error(e);
                    slot.endpoint = None;
                    shared.quiet[slot.pid.index()].store(true, Ordering::Relaxed);
                    continue;
                }
            }
            frames.clear();
            if let Err(e) = endpoint.poll_into(&mut frames) {
                shared.record_error(e);
                slot.endpoint = None;
                shared.quiet[slot.pid.index()].store(true, Ordering::Relaxed);
                continue;
            }
            let now = shared.clock.now();
            shared
                .stats
                .frames_consumed
                .fetch_add(frames.len() as u64, Ordering::Relaxed);
            for frame in frames.drain(..) {
                let from = frame.from;
                let body = free_frame_body(frame);
                let delay = Duration::from_micros(slot.rng.gen_range(0..=max_delay_us));
                slot.pending.push(PendingWall {
                    deliver_after: now + delay,
                    seq: slot.arrival_seq,
                    from,
                    body,
                });
                slot.arrival_seq += 1;
            }

            // Deliver everything whose injected delay has expired, as one
            // batch folded into the engine (which also counts any body that
            // fails to decode).
            let now = shared.clock.now();
            due.clear();
            while slot.pending.peek().is_some_and(|p| p.deliver_after <= now) {
                let Some(p) = slot.pending.pop() else { break };
                due.push(p);
            }
            if !due.is_empty() {
                let errors = slot.engine.deliver_encoded(&due) as u64;
                shared
                    .stats
                    .decode_errors
                    .fetch_add(errors, Ordering::Relaxed);
                shared
                    .stats
                    .messages_delivered
                    .fetch_add(due.len() as u64 - errors, Ordering::Relaxed);
                if due.len() as u64 > errors {
                    any_active = true;
                    shared.touch();
                }
                due.clear();
            }

            // One local step, if this slot's pause has elapsed.
            if now >= slot.next_step_at {
                out.clear();
                slot.engine.local_step(&mut out);
                slot.steps += 1;
                slot.next_step_at =
                    now + Duration::from_micros(slot.rng.gen_range(0..=max_pause_us));
                for (to, msg) in out.drain(..) {
                    if slot.last_encoded.as_ref() != Some(&msg) {
                        slot.body.clear();
                        msg.encode_into(&mut slot.body);
                        slot.shared_body = Arc::from(slot.body.as_slice());
                        slot.last_encoded = Some(msg);
                    }
                    any_active = true;
                    shared.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .bytes_sent
                        .fetch_add(slot.body.len() as u64, Ordering::Relaxed);
                    shared.touch();
                    match endpoint.send_shared(to, &[], &slot.shared_body) {
                        Ok(SendOutcome::Sent) => {}
                        Ok(SendOutcome::Lost) => {
                            shared.stats.frames_consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            shared.record_error(e);
                            slot.endpoint = None;
                            break;
                        }
                    }
                }
            }

            if slot.endpoint.is_some() {
                shared.quiet[slot.pid.index()].store(
                    slot.engine.is_quiescent() && slot.pending.is_empty(),
                    Ordering::Relaxed,
                );
            } else {
                shared.quiet[slot.pid.index()].store(true, Ordering::Relaxed);
            }
        }

        if !any_active {
            std::thread::sleep(IDLE_SWEEP_PAUSE);
        }
    }

    // Run over (or slots crashed): nothing here will send again.
    for slot in slots.iter() {
        shared.quiet[slot.pid.index()].store(true, Ordering::Relaxed);
    }
    slots
        .into_iter()
        .map(|slot| {
            (
                slot.pid,
                NodeOutcome {
                    rumors: slot.engine.rumors().clone(),
                    steps: slot.steps,
                },
            )
        })
        .collect()
}
