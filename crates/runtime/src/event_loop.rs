//! The per-process event loop: decode frames, drive the engine, encode and
//! send.
//!
//! One loop body exists per *pacing* discipline (see
//! [`crate::driver::Pacing`]):
//!
//! * [`run_lockstep_node`] — barrier-paced ticks with seeded per-message
//!   delays in `1..=d` ticks. Every thread runs concurrently within a tick,
//!   but delivery order is a pure function of `(deliver_tick, sender, seq)`,
//!   so a run's outcome is **bit-identical for a given seed** regardless of
//!   OS scheduling. This mirrors the simulator's `(d, δ)` model with
//!   `δ = 1`. Each tick starts with a *settle* handshake: nodes drain
//!   their transports in poll-only rounds until the driver observes that
//!   every frame handed to the transport has been taken off it
//!   (`messages_sent == frames_consumed`). Channels settle in one round;
//!   kernel transports (loopback TCP/UDS) may buffer a frame past one
//!   poll, and without the handshake a late frame would change the
//!   execution — or be lost entirely if the run stopped while it was in
//!   transit. With it, determinism and no-loss hold on *any* transport.
//! * [`run_free_node`] — free-running pacing: the thread sleeps a random
//!   sub-millisecond interval between local steps and injects random
//!   wall-clock delivery delays. Nothing synchronises the threads; this is
//!   the runtime under *real* scheduling nondeterminism.
//!
//! Both loops speak bytes: outgoing messages go through
//! [`agossip_core::codec`] ([`WireCodec::encode_into`]) and incoming frames
//! are decoded before delivery. A frame that fails to decode is counted and
//! dropped — a byte-corrupting link is message loss in the model, and the
//! codec's typed errors guarantee it can never panic the loop.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use agossip_core::codec::{read_varint, write_varint};
use agossip_core::{EncodedFrame, GossipEngine, WireCodec, WireDecodeView};
use agossip_sim::rng::{derive_seed, RngStream};
use agossip_sim::ProcessId;

use crate::clock::Clock;
use crate::error::RuntimeError;
use crate::transport::{Endpoint, FrameBody, RawFrame, SendOutcome};

/// Counters shared by every node thread of one run.
#[derive(Debug, Default)]
pub struct RunStats {
    /// Point-to-point messages handed to the transport.
    pub messages_sent: AtomicU64,
    /// Messages decoded and delivered to an engine.
    pub messages_delivered: AtomicU64,
    /// Raw frames taken off the transport (delivered, dropped by a crashed
    /// node, or undecodable). Lockstep's settle handshake compares this
    /// against `messages_sent` to know the network is drained.
    pub frames_consumed: AtomicU64,
    /// Encoded message-*body* bytes handed to the transport (the lockstep
    /// tick/seq prefix and the stream framing overhead are not included, so
    /// the figure measures the wire codec itself and is comparable across
    /// pacings and transports).
    pub bytes_sent: AtomicU64,
    /// Frames dropped because their payload failed to decode.
    pub decode_errors: AtomicU64,
}

/// Everything the node threads of one run share with the driver.
pub(crate) struct SharedRun {
    pub stats: RunStats,
    pub stop: AtomicBool,
    /// Lockstep only: the driver's verdict of the current settle round
    /// (true once every sent frame has been consumed).
    pub settled: AtomicBool,
    /// Per-node "nothing pending, engine quiescent" flags.
    pub quiet: Vec<AtomicBool>,
    /// Clock of the last send/delivery, for free-running quiescence
    /// detection (milliseconds since the run's [`Clock`] epoch).
    pub last_activity_ms: AtomicU64,
    /// The run's time source: real time under [`crate::MonotonicClock`],
    /// test time under [`crate::FakeClock`]. Only the free-running paths
    /// read it; lockstep time is the tick counter.
    pub clock: Arc<dyn Clock>,
    /// First error any node thread hit; the driver surfaces it after join.
    pub first_error: Mutex<Option<RuntimeError>>,
}

impl SharedRun {
    pub(crate) fn new(n: usize, clock: Arc<dyn Clock>) -> Self {
        SharedRun {
            stats: RunStats::default(),
            stop: AtomicBool::new(false),
            settled: AtomicBool::new(false),
            quiet: (0..n).map(|_| AtomicBool::new(false)).collect(),
            last_activity_ms: AtomicU64::new(0),
            clock,
            first_error: Mutex::new(None),
        }
    }

    /// Time since the run started, per the run's clock.
    pub(crate) fn elapsed(&self) -> Duration {
        self.clock.now()
    }

    pub(crate) fn touch(&self) {
        let elapsed = duration_ms(self.clock.now());
        self.last_activity_ms.store(elapsed, Ordering::Relaxed);
    }

    pub(crate) fn since_last_activity(&self) -> Duration {
        let last = self.last_activity_ms.load(Ordering::Relaxed);
        let now = duration_ms(self.clock.now());
        Duration::from_millis(now.saturating_sub(last))
    }

    /// Records the first error seen; later errors are dropped.
    pub(crate) fn record_error(&self, error: RuntimeError) {
        let mut slot = self.first_error.lock();
        if slot.is_none() {
            *slot = Some(error);
        }
    }

    pub(crate) fn has_error(&self) -> bool {
        self.first_error.lock().is_some()
    }
}

/// Whole milliseconds of `d`, saturating at `u64::MAX`.
fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// What one node thread hands back when it finishes.
pub(crate) struct NodeOutcome {
    pub rumors: agossip_core::RumorSet,
    pub steps: u64,
}

// ---------------------------------------------------------------------------
// Lockstep pacing
// ---------------------------------------------------------------------------

/// A validated, still-encoded message waiting out its delivery tick.
/// Min-heap order on `(deliver_tick, from, seq)` — a strict total order,
/// since `(from, seq)` is unique — which is what makes lockstep delivery
/// deterministic. The body stays encoded (and, for broadcast fast-path
/// frames, shared) until delivery, when a whole tick's batch is folded into
/// the engine through [`GossipEngine::deliver_encoded`].
pub(crate) struct PendingTick {
    pub(crate) deliver_tick: u64,
    pub(crate) from: ProcessId,
    pub(crate) seq: u64,
    /// The frame body, still encoded.
    pub(crate) body: FrameBody,
    /// Offset of the message bytes within `body` (stream-framed payloads
    /// carry the tick/seq stamp inline; fast-path frames carry it in the
    /// frame head).
    pub(crate) msg_at: usize,
}

impl EncodedFrame for PendingTick {
    fn sender(&self) -> ProcessId {
        self.from
    }

    fn body(&self) -> &[u8] {
        self.body.as_slice().get(self.msg_at..).unwrap_or(&[])
    }
}

impl PartialEq for PendingTick {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for PendingTick {}

impl PartialOrd for PendingTick {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingTick {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.deliver_tick, other.from.index(), other.seq).cmp(&(
            self.deliver_tick,
            self.from.index(),
            self.seq,
        ))
    }
}

/// Parameters of one lockstep node thread.
pub(crate) struct LockstepNode<G, E> {
    pub engine: G,
    pub endpoint: E,
    /// Crash after this many local steps (`None` = correct process).
    pub crash_after: Option<u64>,
    /// Per-run master seed (the per-node delay stream is derived from it).
    pub seed: u64,
    /// Delivery delay bound `d ≥ 1`, in ticks.
    pub d: u64,
}

/// Runs one node under barrier-paced lockstep until the driver raises the
/// stop flag. See the module docs for the tick structure and the
/// determinism argument.
pub(crate) fn run_lockstep_node<G, E>(
    node: LockstepNode<G, E>,
    shared: &SharedRun,
    barrier: &Barrier,
) -> NodeOutcome
where
    G: GossipEngine,
    G::Msg: WireCodec + WireDecodeView + PartialEq,
    E: Endpoint,
{
    let LockstepNode {
        mut engine,
        mut endpoint,
        crash_after,
        seed,
        d,
    } = node;
    let pid = endpoint.pid();
    let mut rng = StdRng::seed_from_u64(derive_seed(seed ^ 0x11FE, RngStream::Process(pid)));
    let mut pending: BinaryHeap<PendingTick> = BinaryHeap::new();
    let mut frames: Vec<RawFrame> = Vec::new();
    let mut due: Vec<PendingTick> = Vec::new();
    let mut out: Vec<(ProcessId, G::Msg)> = Vec::new();
    let mut head: Vec<u8> = Vec::new();
    let mut body: Vec<u8> = Vec::new();
    let mut shared_body: Arc<[u8]> = Arc::new([]);
    let mut last_encoded: Option<G::Msg> = None;
    let mut tick = 0u64;
    let mut steps = 0u64;
    let mut seq = 0u64;
    let mut crashed = false;

    'run: loop {
        // --- Settle: drain the transport in poll-only rounds until the
        // driver observes every sent frame consumed (one round on
        // channels; kernel transports may need more). ---------------------
        loop {
            // Push queued outbound bytes (sockets write non-blockingly);
            // frames the flush discovered lost to a dead peer are booked as
            // consumed, like a Lost send, to keep the settle invariant.
            match endpoint.flush() {
                Ok(lost) => {
                    shared
                        .stats
                        .frames_consumed
                        .fetch_add(lost, Ordering::Relaxed);
                }
                Err(e) => {
                    shared.record_error(e);
                    crashed = true;
                }
            }
            frames.clear();
            if let Err(e) = endpoint.poll_into(&mut frames) {
                shared.record_error(e);
                crashed = true; // keep participating in barriers, do nothing
            }
            shared
                .stats
                .frames_consumed
                .fetch_add(frames.len() as u64, Ordering::Relaxed);
            if crashed {
                // A crashed process receives nothing and sends nothing;
                // frames addressed to it are dropped on the floor.
                frames.clear();
            } else {
                for frame in frames.drain(..) {
                    match parse_lockstep_frame(&frame) {
                        Ok((deliver_tick, msg_seq, msg_at)) => pending.push(PendingTick {
                            deliver_tick,
                            from: frame.from,
                            seq: msg_seq,
                            body: frame.into_body(),
                            msg_at,
                        }),
                        Err(_) => {
                            shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            barrier.wait(); // driver compares sent vs consumed
            barrier.wait(); // driver has published settled/stop
            if shared.stop.load(Ordering::Relaxed) {
                break 'run;
            }
            if shared.settled.load(Ordering::Relaxed) {
                break;
            }
        }

        // --- Step: deliver what is due this tick, run the engine, send. --
        let mut active = false;
        if !crashed {
            due.clear();
            while pending.peek().is_some_and(|p| p.deliver_tick <= tick) {
                let Some(p) = pending.pop() else { break };
                due.push(p);
            }
            if !due.is_empty() {
                // One view-decode walk per body, batched unions inside the
                // engine; a frame that fails to decode counts as an error
                // here and delivers nothing, exactly as when polling
                // validated eagerly.
                let errors = engine.deliver_encoded(&due) as u64;
                active = due.len() as u64 > errors;
                shared
                    .stats
                    .decode_errors
                    .fetch_add(errors, Ordering::Relaxed);
                shared
                    .stats
                    .messages_delivered
                    .fetch_add(due.len() as u64 - errors, Ordering::Relaxed);
                due.clear();
            }
            if crash_after.is_some_and(|limit| steps >= limit) {
                crashed = true;
                pending.clear();
            } else {
                out.clear();
                engine.local_step(&mut out);
                steps += 1;
                for (to, msg) in out.drain(..) {
                    // A broadcast pushes clones of one message to many
                    // targets; encode the body once per distinct message
                    // into one shared buffer and only re-stamp the per-send
                    // tick/seq head.
                    if last_encoded.as_ref() != Some(&msg) {
                        body.clear();
                        msg.encode_into(&mut body);
                        shared_body = Arc::from(body.as_slice());
                        last_encoded = Some(msg);
                    }
                    // `d ≥ 1` is guaranteed by `LiveConfig::validate`.
                    let delay = rng.gen_range(1..=d);
                    head.clear();
                    write_varint(&mut head, tick + delay);
                    write_varint(&mut head, seq);
                    seq += 1;
                    active = true;
                    shared.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .bytes_sent
                        .fetch_add(body.len() as u64, Ordering::Relaxed);
                    match endpoint.send_shared(to, &head, &shared_body) {
                        Ok(SendOutcome::Sent) => {}
                        // A frame the transport dropped will never be
                        // polled: book it as consumed so the settle
                        // handshake's sent == consumed invariant survives
                        // peer death.
                        Ok(SendOutcome::Lost) => {
                            shared.stats.frames_consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            shared.record_error(e);
                            crashed = true;
                            break;
                        }
                    }
                }
            }
        }
        // Quiet = this node neither delivered nor sent this tick, holds no
        // pending frames, and its engine will not send unprompted. The
        // delivered/sent part matters: with `d = 1` an engine can absorb a
        // delivery without reacting (a duplicate rumor), and without it two
        // such ticks could read all-quiet while a reply was still in
        // flight.
        let quiet = crashed || (!active && pending.is_empty() && engine.is_quiescent());
        shared.quiet[pid.index()].store(quiet, Ordering::Relaxed);

        // --- Quiet check: the driver inspects the flags between the two
        // barriers and decides whether the run is over. ------------------
        barrier.wait();
        barrier.wait();
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        tick += 1;
    }

    NodeOutcome {
        rumors: engine.rumors().clone(),
        steps,
    }
}

/// Splits a received lockstep frame into `(deliver_tick, seq, offset of the
/// message within the frame body)`. Only the stamp varints are parsed here;
/// the message bytes stay untouched until the frame's tick comes up, where
/// [`GossipEngine::deliver_encoded`] walks them exactly once — an
/// undecodable body is counted as a decode error there, with the same
/// totals as when polling validated eagerly.
pub(crate) fn parse_lockstep_frame(
    frame: &RawFrame,
) -> Result<(u64, u64, usize), agossip_core::CodecError> {
    let head = frame.head();
    let body = frame.body();
    if head.is_empty() {
        // Stream-framed payload: the tick/seq stamp is inline in the body.
        let (deliver_tick, a) = read_varint(body)?;
        let (seq, b) = read_varint(&body[a..])?;
        Ok((deliver_tick, seq, a + b))
    } else {
        // Shared-body fast path: the head carries exactly the two varints.
        let (deliver_tick, a) = read_varint(head)?;
        let (seq, b) = read_varint(&head[a..])?;
        if a + b != head.len() {
            return Err(agossip_core::CodecError::TrailingBytes(head.len() - a - b));
        }
        Ok((deliver_tick, seq, 0))
    }
}

/// Extracts the body of one free-running frame (whose payload is the bare
/// encoded message — no tick/seq stamp). A head-carrying frame, which the
/// free-running send path never produces, is flattened into an owned body.
/// Validation is deferred to delivery, as in the lockstep path.
pub(crate) fn free_frame_body(frame: RawFrame) -> FrameBody {
    if frame.head().is_empty() {
        frame.into_body()
    } else {
        FrameBody::Owned(frame.payload_to_vec())
    }
}

// ---------------------------------------------------------------------------
// Free-running pacing
// ---------------------------------------------------------------------------

/// A validated, still-encoded message waiting out its injected wall-clock
/// delay, deadline-indexed like the lockstep buffer (min-heap on
/// `(deliver_after, seq)` with an arrival sequence for FIFO tie-breaking).
/// Deadlines are elapsed time per the run's [`Clock`], not `Instant`s, so a
/// fake clock can drive them in tests.
pub(crate) struct PendingWall {
    pub(crate) deliver_after: Duration,
    pub(crate) seq: u64,
    pub(crate) from: ProcessId,
    /// The encoded message body (no tick/seq stamp under free pacing).
    pub(crate) body: FrameBody,
}

impl EncodedFrame for PendingWall {
    fn sender(&self) -> ProcessId {
        self.from
    }

    fn body(&self) -> &[u8] {
        self.body.as_slice()
    }
}

impl PartialEq for PendingWall {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for PendingWall {}

impl PartialOrd for PendingWall {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingWall {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deliver_after
            .cmp(&self.deliver_after)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Parameters of one free-running node thread.
pub(crate) struct FreeNode<G, E> {
    pub engine: G,
    pub endpoint: E,
    pub crash_after: Option<u64>,
    pub seed: u64,
    /// Upper bound on the injected per-message delivery delay (the role of
    /// `d` in the model).
    pub max_delay: Duration,
    /// Upper bound on the pause between local steps (the role of `δ`).
    pub max_step_pause: Duration,
}

/// Runs one node free-running until the driver raises the stop flag (or the
/// node's crash point arrives — the thread then exits, dropping its
/// endpoint, which is how its peers experience the crash).
pub(crate) fn run_free_node<G, E>(node: FreeNode<G, E>, shared: &SharedRun) -> NodeOutcome
where
    G: GossipEngine,
    G::Msg: WireCodec + WireDecodeView + PartialEq,
    E: Endpoint,
{
    let FreeNode {
        mut engine,
        mut endpoint,
        crash_after,
        seed,
        max_delay,
        max_step_pause,
    } = node;
    let pid = endpoint.pid();
    let mut rng = StdRng::seed_from_u64(derive_seed(seed ^ 0xA51C, RngStream::Process(pid)));
    let mut pending: BinaryHeap<PendingWall> = BinaryHeap::new();
    let mut frames: Vec<RawFrame> = Vec::new();
    let mut due: Vec<PendingWall> = Vec::new();
    let mut out: Vec<(ProcessId, G::Msg)> = Vec::new();
    let mut body: Vec<u8> = Vec::new();
    let mut shared_body: Arc<[u8]> = Arc::new([]);
    let mut last_encoded: Option<G::Msg> = None;
    let mut arrival_seq = 0u64;
    let mut steps = 0u64;
    let max_delay_us = max_delay.as_micros().max(1) as u64;
    let max_pause_us = max_step_pause.as_micros().max(1) as u64;

    'run: loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if crash_after.is_some_and(|limit| steps >= limit) {
            break; // crash: halt permanently, deliver nothing further
        }

        // Push queued outbound bytes; flush-discovered losses are booked as
        // consumed so the counters stay reconcilable.
        match endpoint.flush() {
            Ok(lost) => {
                shared
                    .stats
                    .frames_consumed
                    .fetch_add(lost, Ordering::Relaxed);
            }
            Err(e) => {
                shared.record_error(e);
                break;
            }
        }
        // Drain the transport into the deadline-indexed delay buffer,
        // drawing each frame's injected delay from the node's seeded stream.
        frames.clear();
        if let Err(e) = endpoint.poll_into(&mut frames) {
            shared.record_error(e);
            break;
        }
        let now = shared.clock.now();
        shared
            .stats
            .frames_consumed
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        for frame in frames.drain(..) {
            let from = frame.from;
            let body = free_frame_body(frame);
            let delay = Duration::from_micros(rng.gen_range(0..=max_delay_us));
            pending.push(PendingWall {
                deliver_after: now + delay,
                seq: arrival_seq,
                from,
                body,
            });
            arrival_seq += 1;
        }

        // Deliver everything whose injected delay has expired; the heap top
        // is the earliest deadline, so this touches only due messages, and
        // the whole due batch folds into the engine in one call (which also
        // counts any body that fails to decode).
        let now = shared.clock.now();
        due.clear();
        while pending.peek().is_some_and(|p| p.deliver_after <= now) {
            let Some(p) = pending.pop() else { break };
            due.push(p);
        }
        if !due.is_empty() {
            let errors = engine.deliver_encoded(&due) as u64;
            shared
                .stats
                .decode_errors
                .fetch_add(errors, Ordering::Relaxed);
            shared
                .stats
                .messages_delivered
                .fetch_add(due.len() as u64 - errors, Ordering::Relaxed);
            if due.len() as u64 > errors {
                shared.touch();
            }
            due.clear();
        }

        // One local step.
        out.clear();
        engine.local_step(&mut out);
        steps += 1;
        for (to, msg) in out.drain(..) {
            // As in the lockstep loop: a broadcast's clones of one message
            // are encoded once into one shared buffer, not once per
            // destination.
            if last_encoded.as_ref() != Some(&msg) {
                body.clear();
                msg.encode_into(&mut body);
                shared_body = Arc::from(body.as_slice());
                last_encoded = Some(msg);
            }
            shared.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .bytes_sent
                .fetch_add(body.len() as u64, Ordering::Relaxed);
            shared.touch();
            match endpoint.send_shared(to, &[], &shared_body) {
                Ok(SendOutcome::Sent) => {}
                // Book transport-dropped frames as consumed, as in the
                // lockstep loop, so the counters stay reconcilable.
                Ok(SendOutcome::Lost) => {
                    shared.stats.frames_consumed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    shared.record_error(e);
                    break 'run;
                }
            }
        }

        shared.quiet[pid.index()].store(
            engine.is_quiescent() && pending.is_empty(),
            Ordering::Relaxed,
        );

        // Pace the next step (the role of δ).
        std::thread::sleep(Duration::from_micros(rng.gen_range(0..=max_pause_us)));
    }

    // Whether the node crashed or the run is over, it will never send again:
    // mark it quiescent so the driver is not blocked on a crashed node.
    shared.quiet[pid.index()].store(true, Ordering::Relaxed);
    NodeOutcome {
        rumors: engine.rumors().clone(),
        steps,
    }
}
