//! Time sources for the free-running paths.
//!
//! Lockstep pacing never reads a clock — its notion of time is the tick
//! counter — but free-running pacing injects *wall-clock* delivery delays
//! and detects completion by a sustained quiet period. Those reads used to
//! be bare `Instant::now()` calls scattered through the event loop (three
//! waived `no-wall-clock` lint sites); they now all go through the
//! [`Clock`] trait, so the one real wall-clock read lives in
//! [`MonotonicClock`] and tests can drive the free-running machinery from a
//! [`FakeClock`] instead of real sleeps.
//!
//! A [`Clock`] reports *elapsed time since its own epoch* as a [`Duration`]
//! rather than an [`std::time::Instant`]: durations are plain arithmetic
//! values, which is what makes a fake implementation trivial and the
//! pending-delivery heaps representation-independent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source: elapsed time since the clock's epoch.
///
/// Implementations must be monotonic (successive `now` calls never go
/// backwards) and cheap — the free-running event loops read the clock a
/// few times per local step.
pub trait Clock: Send + Sync {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;
}

/// The production clock: real monotonic wall-clock time since construction.
///
/// This is the **only** wall-clock read in the runtime crate — every other
/// site goes through the trait, which is what shrank the free-running
/// `no-wall-clock` waiver count from three to one.
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        MonotonicClock {
            // lint:allow(no-wall-clock): the one real time source; all other free-running sites read the Clock trait
            start: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A deterministic test clock: time advances only when told to — either
/// explicitly via [`FakeClock::advance`], or by a fixed amount on every
/// [`Clock::now`] read (`auto_advance`), which lets a multi-threaded
/// free-running run make progress without any thread ever sleeping on real
/// time.
///
/// Thread-safe: the free-running driver and every node thread share one
/// clock.
#[derive(Debug, Default)]
pub struct FakeClock {
    now_micros: AtomicU64,
    auto_advance_micros: u64,
}

impl FakeClock {
    /// A fake clock frozen at its epoch; advance it with
    /// [`FakeClock::advance`].
    pub fn new() -> Self {
        FakeClock::default()
    }

    /// A fake clock that advances itself by `step` on every read.
    pub fn auto_advancing(step: Duration) -> Self {
        FakeClock {
            now_micros: AtomicU64::new(0),
            auto_advance_micros: duration_to_micros(step),
        }
    }

    /// Moves the clock forward by `delta` (saturating: the clock pins at
    /// the maximum representable time instead of wrapping backwards).
    pub fn advance(&self, delta: Duration) {
        let delta = duration_to_micros(delta);
        let _ = self
            .now_micros
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |now| {
                Some(now.saturating_add(delta))
            });
    }
}

/// Saturating micro-second conversion: a fake clock asked to advance by
/// centuries pins at the maximum instead of wrapping backwards.
fn duration_to_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

impl Clock for FakeClock {
    fn now(&self) -> Duration {
        let micros = self
            .now_micros
            .fetch_add(self.auto_advance_micros, Ordering::Relaxed);
        Duration::from_micros(micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_advances_only_when_told() {
        let clock = FakeClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
        clock.advance(Duration::from_secs(1));
        assert_eq!(clock.now(), Duration::from_millis(1250));
    }

    #[test]
    fn auto_advancing_fake_clock_steps_on_every_read() {
        let clock = FakeClock::auto_advancing(Duration::from_micros(100));
        assert_eq!(clock.now(), Duration::ZERO);
        assert_eq!(clock.now(), Duration::from_micros(100));
        assert_eq!(clock.now(), Duration::from_micros(200));
    }

    #[test]
    fn absurd_advances_saturate_instead_of_wrapping() {
        let clock = FakeClock::new();
        clock.advance(Duration::MAX);
        clock.advance(Duration::from_secs(1));
        assert!(clock.now() > Duration::from_secs(1));
    }
}
