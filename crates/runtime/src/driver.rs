//! The live driver: n concurrent processes gossiping to completion over a
//! byte transport.
//!
//! [`run_live`] opens one [`Transport`] endpoint per process, schedules the
//! processes onto OS threads per the configured [`Threading`] — one thread
//! per process, or a handful of reactor threads each multiplexing many
//! processes (see [`crate::reactor`]) — and watches for completion:
//!
//! * **Lockstep** — the driver participates in the tick barrier: each tick
//!   it first arbitrates the settle handshake (nodes drain their
//!   transports until `messages_sent == frames_consumed`, so no frame is
//!   ever read a tick late or lost in kernel transit — this is what makes
//!   the guarantees transport-independent), then stops the run after two
//!   consecutive all-quiet ticks, where *quiet* means a node neither
//!   delivered nor sent anything, holds no pending frames, and its engine
//!   is quiescent. Two idle ticks prove the network empty: any frame sent
//!   at tick `t` makes its sender non-quiet at `t`, so two quiet ticks
//!   mean the last send was at least two ticks ago and everything since
//!   has been consumed and delivered. Outcomes are bit-identical for a
//!   given seed — under either threading, with any reactor count.
//! * **Free-running** — the driver polls for a sustained quiet period,
//!   mirroring the paper's "eventually every process stops sending"
//!   quiescence condition. Time is read through the run's [`Clock`]
//!   ([`run_live`] uses the real [`MonotonicClock`];
//!   [`run_live_with_clock`] lets tests inject a [`crate::FakeClock`]).
//!
//! Crash injection kills process `p` after its configured number of local
//! steps: under free-running pacing its endpoint is dropped (its peers'
//! sends start failing, i.e. their messages are lost); under lockstep the
//! node turns into a zombie that keeps draining its sockets but delivers
//! and sends nothing — same observable semantics, still deterministic.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use agossip_core::{GossipCtx, GossipEngine, RumorSet, WireCodec, WireDecodeView};
use agossip_sim::ProcessId;

use crate::clock::{Clock, MonotonicClock};
use crate::error::{ConfigError, RuntimeError};
use crate::event_loop::{
    run_free_node, run_lockstep_node, FreeNode, LockstepNode, NodeOutcome, SharedRun,
};
use crate::reactor::{reactor_of, run_free_reactor, run_lockstep_reactor, ReactorProc};
use crate::transport::Transport;

/// Upper bound on poll-only settle rounds per lockstep tick. On a healthy
/// transport a frame becomes readable within a round or two; thousands of
/// rounds without progress means frames were truly lost (which lockstep
/// transports never do by construction) and the run aborts with an error
/// instead of spinning forever.
const MAX_SETTLE_ROUNDS: u64 = 100_000;

/// How the node event loops are paced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pacing {
    /// Barrier-paced deterministic ticks with seeded delays in `1..=d`
    /// ticks. Bit-identical outcomes for a given seed, on any transport.
    Lockstep {
        /// Delivery delay bound in ticks (the model's `d`), `≥ 1`.
        d: u64,
        /// Hard limit on the number of ticks (a non-quiescent protocol
        /// otherwise never terminates).
        max_ticks: u64,
    },
    /// Uncoordinated pacing: random pauses between steps, random
    /// clock-driven delivery delays, completion by sustained quiet.
    FreeRunning {
        /// Upper bound on the injected per-message delay (the model's `d`).
        max_delay: Duration,
        /// Upper bound on a node's pause between local steps (the model's
        /// `δ`).
        max_step_pause: Duration,
        /// How long the system must stay quiet before the run is declared
        /// finished.
        quiet_period: Duration,
        /// Hard clock limit on the run.
        max_duration: Duration,
    },
}

impl Pacing {
    /// Lockstep defaults: `d = 2`, generous tick limit.
    pub fn lockstep() -> Self {
        Pacing::Lockstep {
            d: 2,
            max_ticks: 1 << 20,
        }
    }

    /// Free-running defaults suitable for tests: sub-millisecond pacing,
    /// sub-second completion.
    pub fn free_running() -> Self {
        Pacing::FreeRunning {
            max_delay: Duration::from_millis(2),
            max_step_pause: Duration::from_millis(1),
            quiet_period: Duration::from_millis(100),
            max_duration: Duration::from_secs(20),
        }
    }
}

/// How processes are scheduled onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threading {
    /// One OS thread per process (the PR 5 runtime). Faithful to "a process
    /// is a thread", but caps `n` near the machine's thread budget.
    PerProcess,
    /// `reactors` event-loop threads, each multiplexing the processes
    /// pinned to it (process `p` runs on reactor `p mod reactors` — see
    /// [`crate::reactor`]). Thousands of processes on a handful of threads.
    Reactor {
        /// Number of reactor threads, `≥ 1` (clamped to `n` at run time).
        reactors: usize,
    },
}

/// Configuration of one live run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveConfig {
    /// Number of processes.
    pub n: usize,
    /// Failure budget handed to the protocol (`f < n`).
    pub f: usize,
    /// Master seed: protocol randomness and injected delays derive from it.
    pub seed: u64,
    /// Processes to crash, with the number of local steps after which each
    /// halts.
    pub crashes: Vec<(ProcessId, u64)>,
    /// The pacing discipline.
    pub pacing: Pacing,
    /// The thread scheduling discipline.
    pub threading: Threading,
}

impl LiveConfig {
    /// Starts a validating builder: checks that used to fire inside
    /// [`run_live`] (process count, failure budget, crash victims, delay
    /// bound, reactor count) run at [`LiveConfigBuilder::build`] time and
    /// return a typed [`ConfigError`].
    ///
    /// ```
    /// use agossip_runtime::{LiveConfig, Pacing, Threading};
    ///
    /// let config = LiveConfig::builder(64, 4, 0xFEED)
    ///     .pacing(Pacing::lockstep())
    ///     .threading(Threading::Reactor { reactors: 2 })
    ///     .build()
    ///     .expect("valid config");
    /// assert_eq!(config.n, 64);
    /// ```
    pub fn builder(n: usize, f: usize, seed: u64) -> LiveConfigBuilder {
        LiveConfigBuilder {
            config: LiveConfig::lockstep(n, f, seed),
        }
    }

    /// A deterministic lockstep configuration (thread per process).
    pub fn lockstep(n: usize, f: usize, seed: u64) -> Self {
        LiveConfig {
            n,
            f,
            seed,
            crashes: Vec::new(),
            pacing: Pacing::lockstep(),
            threading: Threading::PerProcess,
        }
    }

    /// A free-running configuration with test-friendly timing (thread per
    /// process).
    pub fn free_running(n: usize, f: usize, seed: u64) -> Self {
        LiveConfig {
            n,
            f,
            seed,
            crashes: Vec::new(),
            pacing: Pacing::free_running(),
            threading: Threading::PerProcess,
        }
    }

    /// Adds crash injections.
    pub fn with_crashes(mut self, crashes: Vec<(ProcessId, u64)>) -> Self {
        self.crashes = crashes;
        self
    }

    /// Switches the run onto `reactors` multiplexing reactor threads.
    pub fn on_reactors(mut self, reactors: usize) -> Self {
        self.threading = Threading::Reactor { reactors };
        self
    }

    pub(crate) fn validate(&self) -> Result<(), ConfigError> {
        if self.n == 0 {
            return Err(ConfigError::NoProcesses);
        }
        if self.f >= self.n {
            return Err(ConfigError::FailureBudget {
                f: self.f,
                n: self.n,
            });
        }
        if let Some((victim, _)) = self
            .crashes
            .iter()
            .find(|(victim, _)| victim.index() >= self.n)
        {
            return Err(ConfigError::CrashVictimOutOfRange {
                pid: victim.index(),
                n: self.n,
            });
        }
        if let Pacing::Lockstep { d, .. } = self.pacing {
            if d == 0 {
                return Err(ConfigError::ZeroDelayBound);
            }
        }
        if let Threading::Reactor { reactors } = self.threading {
            if reactors == 0 {
                return Err(ConfigError::ZeroReactors);
            }
        }
        Ok(())
    }

    pub(crate) fn crash_after(&self, pid: ProcessId) -> Option<u64> {
        self.crashes
            .iter()
            .find(|(victim, _)| *victim == pid)
            .map(|(_, steps)| *steps)
    }
}

/// Builder returned by [`LiveConfig::builder`]; validates at [`build`] time.
///
/// [`build`]: LiveConfigBuilder::build
#[derive(Debug, Clone)]
pub struct LiveConfigBuilder {
    config: LiveConfig,
}

impl LiveConfigBuilder {
    /// Sets the pacing discipline (defaults to [`Pacing::lockstep`]).
    pub fn pacing(mut self, pacing: Pacing) -> Self {
        self.config.pacing = pacing;
        self
    }

    /// Sets the thread scheduling discipline (defaults to
    /// [`Threading::PerProcess`]).
    pub fn threading(mut self, threading: Threading) -> Self {
        self.config.threading = threading;
        self
    }

    /// Shorthand for [`Threading::Reactor`] with `reactors` threads.
    pub fn reactors(self, reactors: usize) -> Self {
        self.threading(Threading::Reactor { reactors })
    }

    /// Sets crash injections: each listed process halts after taking the
    /// paired number of local steps.
    pub fn crashes(mut self, crashes: Vec<(ProcessId, u64)>) -> Self {
        self.config.crashes = crashes;
        self
    }

    /// Validates and returns the config. All the checks [`run_live`] used to
    /// perform at call time fire here instead.
    pub fn build(self) -> Result<LiveConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Outcome of a live run.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Which transport carried the frames ("channel", "tcp", "uds").
    pub transport: &'static str,
    /// Final rumor set of each node (crashed nodes report the set they had
    /// when they crashed).
    pub final_rumors: Vec<RumorSet>,
    /// Which nodes were never crash-injected.
    pub correct: Vec<bool>,
    /// Local steps taken per node.
    pub steps: Vec<u64>,
    /// Point-to-point messages handed to the transport.
    pub messages_sent: u64,
    /// Messages decoded and delivered to engines.
    pub messages_delivered: u64,
    /// Encoded payload bytes handed to the transport.
    pub bytes_sent: u64,
    /// Frames dropped because their payload failed to decode (always 0 on a
    /// healthy transport).
    pub decode_errors: u64,
    /// Whether the run ended by quiescence (vs hitting a limit).
    pub quiescent: bool,
    /// Lockstep ticks executed (0 under free-running pacing).
    pub ticks: u64,
    /// Duration of the run per its clock (wall-clock under [`run_live`]).
    pub elapsed: Duration,
}

/// Runs every node of the protocol produced by `make` per the configured
/// threading, exchanging byte frames over `transport`, until completion.
/// Time is real ([`MonotonicClock`]).
pub fn run_live<T, G, F>(
    config: &LiveConfig,
    transport: &T,
    make: F,
) -> Result<LiveReport, RuntimeError>
where
    T: Transport,
    G: GossipEngine + Send,
    F: Fn(GossipCtx) -> G,
    G::Msg: WireCodec + WireDecodeView + PartialEq,
{
    run_live_with_clock(config, transport, Arc::new(MonotonicClock::new()), make)
}

/// [`run_live`] with an injected time source: the free-running delay and
/// quiet-period machinery reads `clock`, so a [`crate::FakeClock`] can
/// drive it deterministically in tests. Lockstep runs never read the clock
/// except for the report's `elapsed` field.
pub fn run_live_with_clock<T, G, F>(
    config: &LiveConfig,
    transport: &T,
    clock: Arc<dyn Clock>,
    make: F,
) -> Result<LiveReport, RuntimeError>
where
    T: Transport,
    G: GossipEngine + Send,
    F: Fn(GossipCtx) -> G,
    G::Msg: WireCodec + WireDecodeView + PartialEq,
{
    config.validate()?;
    let n = config.n;
    let seed = config.seed;
    let endpoints = transport.open(n)?;
    let shared = SharedRun::new(n, clock);
    let engines: Vec<G> = ProcessId::all(n)
        .map(|pid| make(GossipCtx::new(pid, n, config.f, seed)))
        .collect();

    let mut quiescent = false;
    let mut ticks = 0u64;
    let outcomes: Vec<NodeOutcome> = match (&config.pacing, config.threading) {
        (&Pacing::Lockstep { d, max_ticks }, Threading::PerProcess) => {
            let barrier = Barrier::new(n + 1);
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n);
                for (pid, (engine, endpoint)) in engines.into_iter().zip(endpoints).enumerate() {
                    let node = LockstepNode {
                        engine,
                        endpoint,
                        crash_after: config.crash_after(ProcessId(pid)),
                        seed,
                        d,
                    };
                    let shared = &shared;
                    let barrier = &barrier;
                    handles.push(scope.spawn(move || run_lockstep_node(node, shared, barrier)));
                }
                (quiescent, ticks) = drive_lockstep(&barrier, &shared, max_ticks);
                join_nodes(handles, &shared)
            })
        }
        (&Pacing::Lockstep { d, max_ticks }, Threading::Reactor { reactors }) => {
            let r = reactors.min(n);
            let barrier = Barrier::new(r + 1);
            let groups = pin_to_reactors(config, engines, endpoints, r);
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(r);
                for group in groups {
                    let shared = &shared;
                    let barrier = &barrier;
                    handles.push(
                        scope.spawn(move || run_lockstep_reactor(group, seed, d, shared, barrier)),
                    );
                }
                (quiescent, ticks) = drive_lockstep(&barrier, &shared, max_ticks);
                join_reactors(handles, n, &shared)
            })
        }
        (
            &Pacing::FreeRunning {
                max_delay,
                max_step_pause,
                quiet_period,
                max_duration,
            },
            Threading::PerProcess,
        ) => thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (pid, (engine, endpoint)) in engines.into_iter().zip(endpoints).enumerate() {
                let node = FreeNode {
                    engine,
                    endpoint,
                    crash_after: config.crash_after(ProcessId(pid)),
                    seed,
                    max_delay,
                    max_step_pause,
                };
                let shared = &shared;
                handles.push(scope.spawn(move || run_free_node(node, shared)));
            }
            quiescent = drive_free(&shared, quiet_period, max_duration);
            join_nodes(handles, &shared)
        }),
        (
            &Pacing::FreeRunning {
                max_delay,
                max_step_pause,
                quiet_period,
                max_duration,
            },
            Threading::Reactor { reactors },
        ) => {
            let r = reactors.min(n);
            let groups = pin_to_reactors(config, engines, endpoints, r);
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(r);
                for group in groups {
                    let shared = &shared;
                    handles.push(scope.spawn(move || {
                        run_free_reactor(group, seed, max_delay, max_step_pause, shared)
                    }));
                }
                quiescent = drive_free(&shared, quiet_period, max_duration);
                join_reactors(handles, n, &shared)
            })
        }
    };

    if let Some(error) = shared.first_error.lock().take() {
        return Err(error);
    }

    let correct: Vec<bool> = ProcessId::all(n)
        .map(|pid| config.crash_after(pid).is_none())
        .collect();
    Ok(LiveReport {
        transport: transport.name(),
        final_rumors: outcomes.iter().map(|o| o.rumors.clone()).collect(),
        correct,
        steps: outcomes.iter().map(|o| o.steps).collect(),
        messages_sent: shared.stats.messages_sent.load(Ordering::Relaxed),
        messages_delivered: shared.stats.messages_delivered.load(Ordering::Relaxed),
        bytes_sent: shared.stats.bytes_sent.load(Ordering::Relaxed),
        decode_errors: shared.stats.decode_errors.load(Ordering::Relaxed),
        quiescent,
        ticks,
        elapsed: shared.elapsed(),
    })
}

/// Splits engines/endpoints into per-reactor groups by the pinning rule
/// (`pid mod reactors`), pid-ordered within each group.
pub(crate) fn pin_to_reactors<G, E>(
    config: &LiveConfig,
    engines: Vec<G>,
    endpoints: Vec<E>,
    reactors: usize,
) -> Vec<Vec<(ProcessId, ReactorProc<G, E>)>> {
    let mut groups: Vec<Vec<(ProcessId, ReactorProc<G, E>)>> =
        (0..reactors).map(|_| Vec::new()).collect();
    for (i, (engine, endpoint)) in engines.into_iter().zip(endpoints).enumerate() {
        let pid = ProcessId(i);
        groups[reactor_of(pid, reactors)].push((
            pid,
            ReactorProc {
                engine,
                endpoint,
                crash_after: config.crash_after(pid),
            },
        ));
    }
    groups
}

/// The driver's side of the lockstep tick protocol: arbitrates the settle
/// handshake, then the quiet check, as the extra barrier participant. The
/// node side may be thread-per-process event loops or reactor threads —
/// the protocol is identical. Returns `(quiescent, ticks)`.
fn drive_lockstep(barrier: &Barrier, shared: &SharedRun, max_ticks: u64) -> (bool, u64) {
    let mut quiescent = false;
    let mut ticks = 0u64;
    let mut quiet_streak = 0u32;
    'ticks: loop {
        // Settle rounds.
        let mut settle_rounds = 0u64;
        loop {
            barrier.wait(); // nodes have polled
            let sent = shared.stats.messages_sent.load(Ordering::Relaxed);
            let consumed = shared.stats.frames_consumed.load(Ordering::Relaxed);
            let settled = sent == consumed;
            shared.settled.store(settled, Ordering::Relaxed);
            settle_rounds += 1;
            if settle_rounds > MAX_SETTLE_ROUNDS {
                shared.record_error(RuntimeError::Config(format!(
                    "transport failed to settle: {consumed}/{sent} frames \
                     consumed after {settle_rounds} poll rounds"
                )));
            }
            if shared.has_error() {
                shared.stop.store(true, Ordering::Relaxed);
            }
            let stopping = shared.stop.load(Ordering::Relaxed);
            barrier.wait(); // verdict published
            if stopping {
                break 'ticks;
            }
            if settled {
                break;
            }
            // Unsettled on a kernel transport: give the softirq path a
            // moment before the next poll round.
            thread::yield_now();
        }
        // Quiet check.
        barrier.wait();
        ticks += 1;
        let all_quiet = shared.quiet.iter().all(|flag| flag.load(Ordering::Relaxed));
        quiet_streak = if all_quiet { quiet_streak + 1 } else { 0 };
        if quiet_streak >= 2 {
            quiescent = true;
            shared.stop.store(true, Ordering::Relaxed);
        }
        if ticks >= max_ticks || shared.has_error() {
            shared.stop.store(true, Ordering::Relaxed);
        }
        let stopping = shared.stop.load(Ordering::Relaxed);
        barrier.wait();
        if stopping {
            break;
        }
    }
    (quiescent, ticks)
}

/// The driver's side of a free-running run: wait for sustained quiet or
/// the clock limit, then raise the stop flag. Returns `quiescent`.
fn drive_free(shared: &SharedRun, quiet_period: Duration, max_duration: Duration) -> bool {
    let mut quiescent = false;
    loop {
        thread::sleep(Duration::from_millis(5));
        if shared.elapsed() >= max_duration || shared.has_error() {
            break;
        }
        let all_quiet = shared.quiet.iter().all(|flag| flag.load(Ordering::Relaxed));
        if all_quiet && shared.since_last_activity() >= quiet_period {
            quiescent = true;
            break;
        }
    }
    shared.stop.store(true, Ordering::Relaxed);
    quiescent
}

/// Joins the node threads, converting any panic into a recorded
/// [`RuntimeError::NodePanicked`] instead of propagating it. `run_live`
/// surfaces the first recorded error before the (then short) outcome list
/// is ever read.
pub(crate) fn join_nodes<'scope>(
    handles: Vec<thread::ScopedJoinHandle<'scope, NodeOutcome>>,
    shared: &SharedRun,
) -> Vec<NodeOutcome> {
    let mut outcomes = Vec::with_capacity(handles.len());
    for handle in handles {
        match handle.join() {
            Ok(outcome) => outcomes.push(outcome),
            Err(_) => shared.record_error(RuntimeError::NodePanicked),
        }
    }
    outcomes
}

/// Joins reactor threads and re-assembles their per-process outcomes into
/// pid order. A panicked reactor is recorded like a panicked node; the
/// error is surfaced before the (then short) outcome list is read.
pub(crate) fn join_reactors<'scope>(
    handles: Vec<thread::ScopedJoinHandle<'scope, Vec<(ProcessId, NodeOutcome)>>>,
    n: usize,
    shared: &SharedRun,
) -> Vec<NodeOutcome> {
    let mut by_pid: Vec<Option<NodeOutcome>> = (0..n).map(|_| None).collect();
    for handle in handles {
        match handle.join() {
            Ok(outcomes) => {
                for (pid, outcome) in outcomes {
                    by_pid[pid.index()] = Some(outcome);
                }
            }
            Err(_) => shared.record_error(RuntimeError::NodePanicked),
        }
    }
    by_pid.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use crate::transport::{ChannelTransport, SocketTransport};
    use agossip_core::{check_gossip, Ears, GossipSpec, Rumor, Tears, Trivial};

    fn initial_rumors(n: usize) -> Vec<Rumor> {
        (0..n).map(|i| Rumor::new(ProcessId(i), i as u64)).collect()
    }

    fn assert_full_gossip(report: &LiveReport, n: usize) {
        let check = check_gossip(
            GossipSpec::Full,
            &report.final_rumors,
            &initial_rumors(n),
            &report.correct,
            report.quiescent,
        );
        assert!(check.all_ok(), "{check:?}");
    }

    #[test]
    fn lockstep_channel_run_is_bit_identical_across_repeats() {
        let config = LiveConfig::lockstep(12, 3, 7)
            .with_crashes(vec![(ProcessId(10), 2), (ProcessId(11), 0)]);
        let a = run_live(&config, &ChannelTransport, Ears::new).unwrap();
        let b = run_live(&config, &ChannelTransport, Ears::new).unwrap();
        assert_eq!(a.final_rumors, b.final_rumors);
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.messages_delivered, b.messages_delivered);
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.decode_errors, 0);
        assert!(a.quiescent);
    }

    #[test]
    fn lockstep_reactor_matches_per_process_bit_for_bit() {
        // The same configuration under thread-per-process and under 1, 3,
        // and 8 reactors: identical outcomes and counters everywhere.
        let base = LiveConfig::lockstep(12, 3, 7)
            .with_crashes(vec![(ProcessId(10), 2), (ProcessId(11), 0)]);
        let reference = run_live(&base, &ChannelTransport, Ears::new).unwrap();
        for reactors in [1usize, 3, 8] {
            let config = base.clone().on_reactors(reactors);
            let got = run_live(&config, &ChannelTransport, Ears::new).unwrap();
            assert_eq!(got.final_rumors, reference.final_rumors, "r={reactors}");
            assert_eq!(got.messages_sent, reference.messages_sent, "r={reactors}");
            assert_eq!(
                got.messages_delivered, reference.messages_delivered,
                "r={reactors}"
            );
            assert_eq!(got.bytes_sent, reference.bytes_sent, "r={reactors}");
            assert_eq!(got.ticks, reference.ticks, "r={reactors}");
            assert_eq!(got.steps, reference.steps, "r={reactors}");
            assert!(got.quiescent, "r={reactors}");
        }
    }

    #[test]
    fn lockstep_reactor_runs_over_tcp() {
        let n = 8;
        let config = LiveConfig::lockstep(n, 2, 3).on_reactors(2);
        let report = run_live(&config, &SocketTransport::tcp(), Ears::new).unwrap();
        assert_eq!(report.transport, "tcp");
        assert!(report.quiescent);
        assert_eq!(report.decode_errors, 0);
        assert_full_gossip(&report, n);
    }

    #[test]
    fn free_running_reactor_completes_with_crashes() {
        let n = 16;
        let config = LiveConfig::free_running(n, 4, 9)
            .with_crashes(vec![(ProcessId(14), 1), (ProcessId(15), 3)])
            .on_reactors(4);
        let report = run_live(&config, &ChannelTransport, Ears::new).unwrap();
        assert!(report.quiescent);
        assert_full_gossip(&report, n);
    }

    #[test]
    fn lockstep_trivial_gossip_completes_on_channels() {
        let n = 8;
        let config = LiveConfig::lockstep(n, 0, 1);
        let report = run_live(&config, &ChannelTransport, Trivial::new).unwrap();
        assert!(report.quiescent);
        assert_eq!(report.messages_sent, (n * (n - 1)) as u64);
        assert_eq!(report.messages_sent, report.messages_delivered);
        assert!(report.bytes_sent > 0);
        assert_full_gossip(&report, n);
    }

    #[test]
    fn lockstep_runs_over_tcp() {
        let n = 8;
        let config = LiveConfig::lockstep(n, 2, 3);
        let report = run_live(&config, &SocketTransport::tcp(), Ears::new).unwrap();
        assert_eq!(report.transport, "tcp");
        assert!(report.quiescent);
        assert_eq!(report.decode_errors, 0);
        assert_full_gossip(&report, n);
    }

    #[test]
    fn free_running_tears_reaches_majority() {
        let n = 16;
        let config = LiveConfig::free_running(n, 0, 4);
        let report = run_live(&config, &ChannelTransport, Tears::new).unwrap();
        let check = check_gossip(
            GossipSpec::Majority,
            &report.final_rumors,
            &initial_rumors(n),
            &report.correct,
            true,
        );
        assert!(check.gathering_ok, "{check:?}");
        assert!(check.validity_ok);
    }

    #[test]
    fn free_running_driven_by_a_fake_clock() {
        // No real time passes (beyond scheduler pauses): every delay,
        // quiet-period and deadline read comes from the auto-advancing
        // fake clock. The run must still complete, checker-verified.
        let n = 8;
        let config = LiveConfig {
            pacing: Pacing::FreeRunning {
                max_delay: Duration::from_millis(2),
                max_step_pause: Duration::from_micros(50),
                quiet_period: Duration::from_millis(40),
                max_duration: Duration::from_secs(3600),
            },
            ..LiveConfig::free_running(n, 2, 11)
        }
        .on_reactors(2);
        let clock = Arc::new(FakeClock::auto_advancing(Duration::from_micros(20)));
        let report = run_live_with_clock(&config, &ChannelTransport, clock, Ears::new).unwrap();
        assert!(report.quiescent);
        assert_full_gossip(&report, n);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad_f = LiveConfig::lockstep(4, 4, 0);
        assert!(matches!(
            run_live(&bad_f, &ChannelTransport, Trivial::new),
            Err(RuntimeError::Config(_))
        ));
        let bad_victim = LiveConfig::lockstep(4, 1, 0).with_crashes(vec![(ProcessId(9), 0)]);
        assert!(matches!(
            run_live(&bad_victim, &ChannelTransport, Trivial::new),
            Err(RuntimeError::Config(_))
        ));
        let bad_d = LiveConfig {
            pacing: Pacing::Lockstep { d: 0, max_ticks: 1 },
            ..LiveConfig::lockstep(4, 1, 0)
        };
        assert!(matches!(
            run_live(&bad_d, &ChannelTransport, Trivial::new),
            Err(RuntimeError::Config(_))
        ));
        let bad_reactors = LiveConfig::lockstep(4, 1, 0).on_reactors(0);
        assert!(matches!(
            run_live(&bad_reactors, &ChannelTransport, Trivial::new),
            Err(RuntimeError::Config(_))
        ));
    }

    #[test]
    fn builder_validates_at_build_time() {
        let ok = LiveConfig::builder(8, 2, 7).reactors(2).build().unwrap();
        assert_eq!(ok.threading, Threading::Reactor { reactors: 2 });
        assert_eq!(ok, LiveConfig::lockstep(8, 2, 7).on_reactors(2));
        assert_eq!(
            LiveConfig::builder(0, 0, 7).build(),
            Err(ConfigError::NoProcesses)
        );
        assert_eq!(
            LiveConfig::builder(4, 4, 7).build(),
            Err(ConfigError::FailureBudget { f: 4, n: 4 })
        );
        assert_eq!(
            LiveConfig::builder(4, 1, 7)
                .crashes(vec![(ProcessId(9), 1)])
                .build(),
            Err(ConfigError::CrashVictimOutOfRange { pid: 9, n: 4 })
        );
        assert_eq!(
            LiveConfig::builder(4, 1, 7)
                .pacing(Pacing::Lockstep {
                    d: 0,
                    max_ticks: 10
                })
                .build(),
            Err(ConfigError::ZeroDelayBound)
        );
        assert_eq!(
            LiveConfig::builder(4, 1, 7).reactors(0).build(),
            Err(ConfigError::ZeroReactors)
        );
    }

    #[test]
    fn lockstep_tick_limit_reports_non_quiescent() {
        // d = 1 and a tick budget too small for gossip to finish.
        let config = LiveConfig {
            pacing: Pacing::Lockstep { d: 1, max_ticks: 2 },
            ..LiveConfig::lockstep(8, 2, 5)
        };
        let report = run_live(&config, &ChannelTransport, Ears::new).unwrap();
        assert!(!report.quiescent);
        assert_eq!(report.ticks, 2);
    }
}
