//! Error type of the live runtime.

use std::fmt;

use agossip_core::CodecError;

/// Why a live run (or one of its transport operations) failed.
#[derive(Debug)]
pub enum RuntimeError {
    /// An I/O operation on a socket transport failed in a way that is not
    /// attributable to a crashed peer (peer-connection failures are message
    /// loss, not errors — see `transport`).
    Io {
        /// What the runtime was doing.
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A frame arrived but its payload failed to decode. The event loop
    /// normally *counts* decode failures instead of propagating them (a
    /// byte-corrupting network is message loss in the model); this variant is
    /// surfaced only by transport-level helpers.
    Codec(CodecError),
    /// The configuration is invalid (e.g. `f ≥ n`).
    Config(String),
    /// A node thread panicked instead of returning an outcome. The driver
    /// records this and aborts the run; the panic payload is not preserved.
    NodePanicked,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Io { context, source } => write!(f, "{context}: {source}"),
            RuntimeError::Codec(e) => write!(f, "frame decode failed: {e}"),
            RuntimeError::Config(reason) => write!(f, "invalid runtime config: {reason}"),
            RuntimeError::NodePanicked => write!(f, "a node thread panicked"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Io { source, .. } => Some(source),
            RuntimeError::Codec(e) => Some(e),
            RuntimeError::Config(_) => None,
            RuntimeError::NodePanicked => None,
        }
    }
}

impl From<CodecError> for RuntimeError {
    fn from(e: CodecError) -> Self {
        RuntimeError::Codec(e)
    }
}

/// Attaches a context string to an I/O error.
pub(crate) fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> RuntimeError {
    move |source| RuntimeError::Io { context, source }
}
