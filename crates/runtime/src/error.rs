//! Error type of the live runtime.

use std::fmt;

use agossip_core::CodecError;

/// Why a live run (or one of its transport operations) failed.
#[derive(Debug)]
pub enum RuntimeError {
    /// An I/O operation on a socket transport failed in a way that is not
    /// attributable to a crashed peer (peer-connection failures are message
    /// loss, not errors — see `transport`).
    Io {
        /// What the runtime was doing.
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A frame arrived but its payload failed to decode. The event loop
    /// normally *counts* decode failures instead of propagating them (a
    /// byte-corrupting network is message loss in the model); this variant is
    /// surfaced only by transport-level helpers.
    Codec(CodecError),
    /// The configuration is invalid (e.g. `f ≥ n`).
    Config(String),
    /// A node thread panicked instead of returning an outcome. The driver
    /// records this and aborts the run; the panic payload is not preserved.
    NodePanicked,
    /// A service-mode epoch stopped making progress: it neither settled nor
    /// showed any send/deliver activity for longer than the configured stall
    /// bound. This replaces the old behaviour of hanging silently until
    /// `max_duration` — with pipelined epochs a busy epoch would mask a
    /// stalled one, so staleness is tracked per epoch.
    EpochStalled {
        /// The epoch that stalled.
        epoch: u64,
        /// How long the epoch sat without settling, in the run's time unit
        /// (lockstep ticks, or milliseconds when free-running).
        stalled_for: u64,
    },
}

/// Why a [`crate::driver::LiveConfig`] (or service config) failed to build.
///
/// Produced by [`crate::driver::LiveConfigBuilder::build`]; converts into
/// [`RuntimeError::Config`] so existing `Err(RuntimeError::Config(_))`
/// call sites keep working.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `n == 0`: there is nothing to run.
    NoProcesses,
    /// `f >= n`: the failure budget must leave at least one correct process.
    FailureBudget {
        /// Configured failure budget.
        f: usize,
        /// Configured process count.
        n: usize,
    },
    /// A crash schedule names a process id outside `0..n`.
    CrashVictimOutOfRange {
        /// The out-of-range victim index.
        pid: usize,
        /// Configured process count.
        n: usize,
    },
    /// Lockstep pacing with `d == 0`: every delay is drawn from `1..=d`.
    ZeroDelayBound,
    /// `Threading::Reactor { reactors: 0 }`: at least one reactor thread is
    /// required.
    ZeroReactors,
    /// A service config with `window == 0`: no epoch could ever be admitted.
    ZeroWindow,
    /// A service config with `epochs == 0`: the run would finish vacuously.
    ZeroEpochs,
    /// Free-running service mode where the per-epoch quiet period does not
    /// exceed the maximum injected delay, so an epoch could be declared
    /// settled while one of its frames is still in flight.
    QuietPeriodTooShort {
        /// Configured per-epoch quiet period (ms).
        quiet_period_ms: u64,
        /// Configured maximum injected delay (ms).
        max_delay_ms: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoProcesses => write!(f, "n must be at least 1"),
            ConfigError::FailureBudget { f: budget, n } => {
                write!(f, "failure budget f={budget} must be < n={n}")
            }
            ConfigError::CrashVictimOutOfRange { pid, n } => {
                write!(f, "crash victim {pid} out of range for n={n}")
            }
            ConfigError::ZeroDelayBound => write!(f, "lockstep delay bound d must be at least 1"),
            ConfigError::ZeroReactors => write!(f, "reactor count must be at least 1"),
            ConfigError::ZeroWindow => write!(f, "service window must be at least 1"),
            ConfigError::ZeroEpochs => write!(f, "service must run at least one epoch"),
            ConfigError::QuietPeriodTooShort {
                quiet_period_ms,
                max_delay_ms,
            } => write!(
                f,
                "per-epoch quiet period {quiet_period_ms}ms must exceed max delay {max_delay_ms}ms"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for RuntimeError {
    fn from(e: ConfigError) -> Self {
        RuntimeError::Config(e.to_string())
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Io { context, source } => write!(f, "{context}: {source}"),
            RuntimeError::Codec(e) => write!(f, "frame decode failed: {e}"),
            RuntimeError::Config(reason) => write!(f, "invalid runtime config: {reason}"),
            RuntimeError::NodePanicked => write!(f, "a node thread panicked"),
            RuntimeError::EpochStalled { epoch, stalled_for } => {
                write!(f, "epoch {epoch} stalled for {stalled_for} time units")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Io { source, .. } => Some(source),
            RuntimeError::Codec(e) => Some(e),
            RuntimeError::Config(_) => None,
            RuntimeError::NodePanicked => None,
            RuntimeError::EpochStalled { .. } => None,
        }
    }
}

impl From<CodecError> for RuntimeError {
    fn from(e: CodecError) -> Self {
        RuntimeError::Codec(e)
    }
}

/// Attaches a context string to an I/O error.
pub(crate) fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> RuntimeError {
    move |source| RuntimeError::Io { context, source }
}
