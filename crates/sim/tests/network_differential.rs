//! Differential tests against the historical `VecDeque`-scan network.
//!
//! The deadline-indexed [`Network`] replaced a per-destination `VecDeque`
//! that was popped and rebuilt on every collection. These tests keep that
//! seed implementation alive as an executable model and check, across random
//! schedules, delays, crashes, and withheld messages, that the new engine
//! produces **identical** behaviour:
//!
//! * `network_matches_reference_model` drives the network and the model
//!   through the same operation sequence and compares every delivered batch
//!   (content *and* order), plus every observable query.
//! * `simulation_matches_reference_stepper` replays the seed's whole step
//!   body (crash → deliver → compute → send, `VecDeque` network and all) for
//!   a deterministic request/reply protocol and compares the envelope
//!   sequence every process received, the quiescence time, and the metric
//!   counters against a real [`Simulation`] driven through `step_manual`
//!   with the same schedules, crashes, and delay choices.

use std::collections::VecDeque;

use proptest::prelude::*;

use agossip_sim::{Envelope, Network, Outbox, Process, ProcessId, SimConfig, Simulation, TimeStep};

/// A tiny deterministic PRNG (splitmix64) used to expand one proptest-drawn
/// seed into a full scenario; keeps the strategies simple while still
/// exploring a large space.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

// ---------------------------------------------------------------------------
// Part 1: the network against the seed VecDeque model.
// ---------------------------------------------------------------------------

/// The seed implementation, verbatim in behaviour: a per-destination
/// `VecDeque` scanned (popped and rebuilt) on every collection.
struct ReferenceNetwork<M> {
    queues: Vec<VecDeque<(Envelope<M>, TimeStep)>>,
    in_flight: usize,
}

impl<M> ReferenceNetwork<M> {
    fn new(n: usize) -> Self {
        ReferenceNetwork {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            in_flight: 0,
        }
    }

    fn send(&mut self, envelope: Envelope<M>, delay: u64) {
        let deliverable_at = envelope.sent_at.after(delay);
        let to = envelope.to.index();
        self.queues[to].push_back((envelope, deliverable_at));
        self.in_flight += 1;
    }

    fn collect_deliverable(&mut self, to: ProcessId, now: TimeStep) -> Vec<Envelope<M>> {
        let queue = &mut self.queues[to.index()];
        let mut delivered = Vec::new();
        let mut remaining = VecDeque::with_capacity(queue.len());
        while let Some((env, at)) = queue.pop_front() {
            if at <= now {
                delivered.push(env);
            } else {
                remaining.push_back((env, at));
            }
        }
        *queue = remaining;
        self.in_flight -= delivered.len();
        delivered
    }

    fn drop_for(&mut self, to: ProcessId) -> usize {
        let queue = &mut self.queues[to.index()];
        let dropped = queue.len();
        queue.clear();
        self.in_flight -= dropped;
        dropped
    }

    fn earliest_deliverable_for(&self, to: ProcessId) -> Option<TimeStep> {
        self.queues[to.index()].iter().map(|(_, at)| *at).min()
    }

    fn all_beyond(&self, horizon: TimeStep) -> bool {
        self.queues.iter().flatten().all(|(_, at)| *at > horizon)
    }

    fn earliest_deliverable(&self) -> Option<TimeStep> {
        self.queues.iter().flatten().map(|(_, at)| *at).min()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same operation sequence in, same observations out — including the
    /// order of every delivered batch.
    #[test]
    fn network_matches_reference_model(
        n_base in 2usize..8,
        wide in any::<bool>(),
        d in 1u64..6,
        ops in 20usize..160,
        scenario in 0u64..1_000_000,
    ) {
        // Half the cases use a universe spanning several scheduler shards
        // (64 destinations each), so the shard-cache merge in
        // `earliest_deliverable`/`all_beyond` is exercised across
        // boundaries, not just within shard 0.
        let n = if wide { n_base * 24 } else { n_base };
        let mut prng = Prng(scenario);
        let mut network: Network<u64> = Network::new(n);
        let mut model: ReferenceNetwork<u64> = ReferenceNetwork::new(n);
        let mut now = TimeStep::ZERO;
        let mut next_payload = 0u64;

        for _ in 0..ops {
            match prng.below(10) {
                // Send (most common): random pair, delay in [1, d] or withheld.
                0..=5 => {
                    let from = ProcessId(prng.below(n as u64) as usize);
                    let to = ProcessId(prng.below(n as u64) as usize);
                    let delay = if prng.chance(10) {
                        u64::MAX
                    } else {
                        1 + prng.below(d)
                    };
                    let env = Envelope { from, to, sent_at: now, payload: next_payload };
                    next_payload += 1;
                    network.send(env.clone(), delay);
                    model.send(env, delay);
                }
                // Collect for a random destination.
                6..=7 => {
                    let to = ProcessId(prng.below(n as u64) as usize);
                    let got = network.collect_deliverable(to, now);
                    let expected = model.collect_deliverable(to, now);
                    prop_assert_eq!(got, expected, "delivered batch diverged");
                }
                // Crash: drop a random destination's queue.
                8 => {
                    let to = ProcessId(prng.below(n as u64) as usize);
                    prop_assert_eq!(network.drop_for(to), model.drop_for(to));
                }
                // Advance time.
                _ => {
                    now = now.after(1 + prng.below(d));
                }
            }

            // Observables agree after every operation.
            prop_assert_eq!(network.in_flight(), model.in_flight);
            for pid in ProcessId::all(n) {
                prop_assert_eq!(
                    network.earliest_deliverable_for(pid),
                    model.earliest_deliverable_for(pid)
                );
                prop_assert_eq!(
                    network.pending_for(pid),
                    model.queues[pid.index()].len()
                );
                prop_assert_eq!(
                    network.clone_pending_for(pid),
                    model.queues[pid.index()]
                        .iter()
                        .map(|(env, _)| env.clone())
                        .collect::<Vec<_>>(),
                    "pending order diverged"
                );
            }
            prop_assert_eq!(network.all_beyond(now), model.all_beyond(now));
            prop_assert_eq!(
                network.earliest_deliverable(),
                model.earliest_deliverable(),
                "shard-merged earliest deadline diverged"
            );
        }

        // Drain everything still deliverable and compare the final batches.
        now = now.after(d);
        for pid in ProcessId::all(n) {
            prop_assert_eq!(
                network.collect_deliverable(pid, now),
                model.collect_deliverable(pid, now)
            );
        }
        prop_assert_eq!(network.in_flight(), model.in_flight);
    }
}

// ---------------------------------------------------------------------------
// Part 2: the whole stepping core against the seed step body.
// ---------------------------------------------------------------------------

/// A deterministic request/reply protocol: on its first step a process sends
/// a REQUEST to every other process; every REQUEST is answered with one
/// REPLY. Receipt order is fully observable through `received`.
const REQUEST: u64 = 0;
const REPLY: u64 = 1;

#[derive(Debug, Clone)]
struct EchoFlood {
    id: ProcessId,
    n: usize,
    sent_initial: bool,
    pending_replies: Vec<ProcessId>,
    /// Every `(from, payload)` pair ever delivered, in delivery order.
    received: Vec<(ProcessId, u64)>,
}

impl EchoFlood {
    fn new(id: ProcessId, n: usize) -> Self {
        EchoFlood {
            id,
            n,
            sent_initial: false,
            pending_replies: Vec::new(),
            received: Vec::new(),
        }
    }

    /// The protocol logic shared by the real `Process` impl and the
    /// reference stepper.
    fn step_logic(
        &mut self,
        inbox: impl Iterator<Item = (ProcessId, u64)>,
        sends: &mut Vec<(ProcessId, u64)>,
    ) {
        for (from, payload) in inbox {
            self.received.push((from, payload));
            if payload == REQUEST {
                self.pending_replies.push(from);
            }
        }
        if !self.sent_initial {
            self.sent_initial = true;
            for q in ProcessId::all(self.n) {
                if q != self.id {
                    sends.push((q, REQUEST));
                }
            }
        }
        for to in std::mem::take(&mut self.pending_replies) {
            sends.push((to, REPLY));
        }
    }

    fn quiet(&self) -> bool {
        self.sent_initial && self.pending_replies.is_empty()
    }
}

impl Process for EchoFlood {
    type Message = u64;

    fn on_step(
        &mut self,
        _now: TimeStep,
        inbox: &mut Vec<Envelope<Self::Message>>,
        out: &mut Outbox<Self::Message>,
    ) {
        let mut sends = Vec::new();
        let drained: Vec<(ProcessId, u64)> =
            inbox.drain(..).map(|env| (env.from, env.payload)).collect();
        self.step_logic(drained.into_iter(), &mut sends);
        for (to, payload) in sends {
            out.send(to, payload);
        }
    }

    fn is_quiescent(&self) -> bool {
        self.quiet()
    }
}

/// Everything one comparison scenario needs: per-step schedules, crashes,
/// and the delay assigned to the i-th non-dropped send of the execution.
struct Scenario {
    n: usize,
    d: u64,
    schedules: Vec<Vec<ProcessId>>,
    crashes: Vec<Vec<ProcessId>>,
    delays: Vec<u64>,
}

fn build_scenario(n: usize, d: u64, steps: usize, f: usize, seed: u64) -> Scenario {
    let mut prng = Prng(seed);
    let mut schedules = Vec::with_capacity(steps);
    let mut crashes = Vec::with_capacity(steps);
    let mut crash_budget = f;
    let mut crashed = vec![false; n];
    for _ in 0..steps {
        // Random non-empty-ish subset; processes may legitimately be starved.
        let mut schedule = Vec::new();
        for pid in ProcessId::all(n) {
            if prng.chance(70) {
                schedule.push(pid);
            }
        }
        let mut step_crashes = Vec::new();
        if crash_budget > 0 && prng.chance(8) {
            let victim = prng.below(n as u64) as usize;
            if !crashed[victim] {
                crashed[victim] = true;
                crash_budget -= 1;
                step_crashes.push(ProcessId(victim));
            }
        }
        schedules.push(schedule);
        crashes.push(step_crashes);
    }
    // More delay draws than any execution can consume (one per sent message,
    // at most n-1 requests + n-1 replies per process).
    let delays = (0..2 * n * n)
        .map(|_| {
            if prng.chance(10) {
                u64::MAX
            } else {
                1 + prng.below(d)
            }
        })
        .collect();
    Scenario {
        n,
        d,
        schedules,
        crashes,
        delays,
    }
}

/// Observable outcome of one execution, used for the comparison.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    received: Vec<Vec<(ProcessId, u64)>>,
    messages_sent: u64,
    messages_delivered: u64,
    messages_dropped: u64,
    in_flight: usize,
    max_delivery_delay: u64,
    max_schedule_gap: u64,
    quiescence_time: Option<TimeStep>,
    crashes: usize,
}

/// Replays the scenario through the real engine (`step_manual`).
fn run_real(scenario: &Scenario) -> Observed {
    let config = SimConfig::new(scenario.n, scenario.n - 1)
        .with_d(scenario.d)
        .with_delta(scenario.schedules.len() as u64 + 1);
    let processes = ProcessId::all(scenario.n)
        .map(|id| EchoFlood::new(id, scenario.n))
        .collect();
    let mut sim: Simulation<EchoFlood> = Simulation::new(config, processes).unwrap();
    let mut next_delay = 0usize;
    for (schedule, crashes) in scenario.schedules.iter().zip(&scenario.crashes) {
        let delays = &scenario.delays;
        sim.step_manual(schedule, crashes, |_| {
            let d = delays[next_delay];
            next_delay += 1;
            d
        })
        .unwrap();
    }
    let metrics = sim.metrics();
    Observed {
        received: ProcessId::all(scenario.n)
            .map(|pid| sim.process(pid).received.clone())
            .collect(),
        messages_sent: metrics.messages_sent,
        messages_delivered: metrics.messages_delivered,
        messages_dropped: metrics.messages_dropped,
        in_flight: sim.in_flight(),
        max_delivery_delay: metrics.max_delivery_delay,
        max_schedule_gap: metrics.max_schedule_gap,
        quiescence_time: metrics.quiescence_time,
        crashes: metrics.crashes,
    }
}

/// Replays the scenario through a reimplementation of the seed's step body:
/// `VecDeque` network, same crash/deliver/compute/send order, same metric
/// updates.
fn run_reference(scenario: &Scenario) -> Observed {
    let n = scenario.n;
    let mut procs: Vec<EchoFlood> = ProcessId::all(n).map(|id| EchoFlood::new(id, n)).collect();
    let mut network: ReferenceNetwork<u64> = ReferenceNetwork::new(n);
    let mut alive = vec![true; n];
    let mut quiescent: Vec<bool> = procs.iter().map(|p| p.quiet()).collect();
    let mut last_scheduled = vec![TimeStep::ZERO; n];
    let mut now = TimeStep::ZERO;
    let mut next_delay = 0usize;
    let mut obs = Observed {
        received: Vec::new(),
        messages_sent: 0,
        messages_delivered: 0,
        messages_dropped: 0,
        in_flight: 0,
        max_delivery_delay: 0,
        max_schedule_gap: 0,
        quiescence_time: None,
        crashes: 0,
    };

    for (schedule, crashes) in scenario.schedules.iter().zip(&scenario.crashes) {
        for &victim in crashes {
            if alive[victim.index()] {
                alive[victim.index()] = false;
                obs.crashes += 1;
                obs.messages_dropped += network.drop_for(victim) as u64;
            }
        }
        let mut outgoing: Vec<Envelope<u64>> = Vec::new();
        for &pid in schedule {
            if !alive[pid.index()] {
                continue;
            }
            let inbox = network.collect_deliverable(pid, now);
            for env in &inbox {
                obs.messages_delivered += 1;
                obs.max_delivery_delay = obs.max_delivery_delay.max(now.since(env.sent_at));
            }
            let gap = now.since(last_scheduled[pid.index()]);
            obs.max_schedule_gap = obs.max_schedule_gap.max(gap);
            last_scheduled[pid.index()] = now;

            let mut sends = Vec::new();
            procs[pid.index()].step_logic(
                inbox.into_iter().map(|env| (env.from, env.payload)),
                &mut sends,
            );
            quiescent[pid.index()] = procs[pid.index()].quiet();
            obs.messages_sent += sends.len() as u64;
            for (to, payload) in sends {
                outgoing.push(Envelope {
                    from: pid,
                    to,
                    sent_at: now,
                    payload,
                });
            }
        }
        for env in outgoing {
            if !alive[env.to.index()] {
                obs.messages_dropped += 1;
                continue;
            }
            let delay = scenario.delays[next_delay];
            next_delay += 1;
            network.send(env, delay);
        }
        let system_quiescent =
            alive.iter().zip(&quiescent).all(|(a, q)| !*a || *q) && network.in_flight == 0;
        if system_quiescent && obs.quiescence_time.is_none() {
            obs.quiescence_time = Some(now);
        }
        now.tick();
    }

    obs.in_flight = network.in_flight;
    obs.received = procs.into_iter().map(|p| p.received).collect();
    obs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The rebuilt stepping core is observationally identical to the seed
    /// step body: same envelope sequence at every process, same quiescence
    /// time, same metric counters.
    #[test]
    fn simulation_matches_reference_stepper(
        n in 2usize..10,
        d in 1u64..5,
        steps in 10usize..60,
        scenario_seed in 0u64..1_000_000,
    ) {
        let scenario = build_scenario(n, d, steps, n / 2, scenario_seed);
        let real = run_real(&scenario);
        let reference = run_reference(&scenario);
        prop_assert_eq!(real, reference);
    }
}
