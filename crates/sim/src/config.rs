//! Simulation configuration.

use crate::error::{SimError, SimResult};

/// The largest system size the simulator accepts: `2^20` processes.
///
/// The cap exists so that every layer above can rely on process indices
/// fitting comfortably in 32 bits: the adaptive sparse set representation
/// stores origins as `u32`, the wire codec rejects identifiers at the same
/// `1 << 20` bound (`MAX_WIRE_ID`), and word-packed bitset math indexes
/// `n / 64` words with 32-bit arithmetic. `n = 2^20` keeps all of those a
/// factor of ~4000 below `u32::MAX` while still being 16× the largest
/// checker-verified scale run (`n = 65 536`; see the `scale` scenario).
pub const MAX_PROCESSES: usize = 1 << 20;

/// Parameters of one simulated execution.
///
/// `n`, `f`, `d` and `δ` are the quantities in which every bound of the paper
/// is expressed. The simulator enforces the delay bound: every assigned delay
/// must lie in `1..=d`, or be `u64::MAX` to withhold a message forever
/// (adaptive adversaries exceed `d` only by withholding). The scheduling
/// bound `δ` is *not* enforced — an adversary may starve processes for longer
/// — and the *actual* `δ` realised by the execution is recorded in
/// [`crate::metrics::Metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of processes.
    pub n: usize,
    /// Maximum number of crash failures the execution may contain (`f < n`).
    pub f: usize,
    /// Upper bound on message delivery delay for this execution (`d ≥ 1`).
    pub d: u64,
    /// Upper bound on the scheduling gap of live processes (`δ ≥ 1`).
    pub delta: u64,
    /// Seed from which all randomness in the execution is derived.
    pub seed: u64,
    /// Safety limit on the number of global time steps; the run loop aborts
    /// with [`SimError::StepLimitExceeded`] if it is reached.
    pub max_steps: u64,
    /// When true, [`crate::Simulation::run_until`] jumps the clock directly
    /// to the network's earliest delivery deadline whenever every alive
    /// process is quiescent and messages are still in flight, instead of
    /// ticking through the idle window one step at a time. The skipped steps
    /// are counted in [`crate::Metrics::idle_steps_skipped`].
    ///
    /// Off by default: fast-forwarding skips the adversary's `plan_step`
    /// calls (and the quiescent processes' no-op local steps) for the skipped
    /// window, so per-step metrics (`elapsed_steps`, `steps_by`, schedule
    /// gaps) and the adversary's RNG consumption differ from a tick-by-tick
    /// run of the same seed. In particular, an adversary whose crash plan is
    /// keyed to absolute times inside a skipped window fires those crashes
    /// only at the jump target, which can change crash timestamps and
    /// `quiescence_time`; enable the flag only for delivery-driven runs where
    /// idle windows are genuinely inert.
    pub idle_fast_forward: bool,
}

impl SimConfig {
    /// Creates a configuration with the given system size and failure budget,
    /// unit delays (`d = δ = 1`), seed 0 and a generous step limit.
    pub fn new(n: usize, f: usize) -> Self {
        SimConfig {
            n,
            f,
            d: 1,
            delta: 1,
            seed: 0,
            max_steps: default_max_steps(n),
            idle_fast_forward: false,
        }
    }

    /// Sets the delivery-delay bound `d`.
    pub fn with_d(mut self, d: u64) -> Self {
        self.d = d;
        self
    }

    /// Sets the scheduling bound `δ`.
    pub fn with_delta(mut self, delta: u64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the step limit.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Enables or disables idle fast-forward (see
    /// [`Self::idle_fast_forward`]).
    pub fn with_idle_fast_forward(mut self, enabled: bool) -> Self {
        self.idle_fast_forward = enabled;
        self
    }

    /// `d + δ`, the unit in which the paper states every time bound.
    pub fn latency_unit(&self) -> u64 {
        self.d + self.delta
    }

    /// Validates the configuration.
    pub fn validate(&self) -> SimResult<()> {
        if self.n == 0 {
            return Err(SimError::InvalidConfig {
                reason: "n must be at least 1".into(),
            });
        }
        if self.n > MAX_PROCESSES {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "n must be ≤ {MAX_PROCESSES} (2^20; process indices are kept \
                     within 32-bit word math), got n = {}",
                    self.n
                ),
            });
        }
        if self.f >= self.n {
            return Err(SimError::InvalidConfig {
                reason: format!("f must be < n (got f = {}, n = {})", self.f, self.n),
            });
        }
        if self.d == 0 {
            return Err(SimError::InvalidConfig {
                reason: "d must be at least 1".into(),
            });
        }
        if self.delta == 0 {
            return Err(SimError::InvalidConfig {
                reason: "delta must be at least 1".into(),
            });
        }
        if self.max_steps == 0 {
            return Err(SimError::InvalidConfig {
                reason: "max_steps must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// A step limit comfortably above the running time of every protocol in this
/// workspace for systems of size `n`, while still catching livelock bugs.
fn default_max_steps(n: usize) -> u64 {
    let n = n.max(2) as u64;
    // Generous: quadratic in n with a large constant. The slowest protocol we
    // run (EARS with f close to n) needs O(n/(n-f) · log² n · (d+δ)) steps.
    200_000 + 200 * n * n.ilog2() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let cfg = SimConfig::new(16, 4)
            .with_d(3)
            .with_delta(2)
            .with_seed(99)
            .with_max_steps(500)
            .with_idle_fast_forward(true);
        assert_eq!(cfg.n, 16);
        assert_eq!(cfg.f, 4);
        assert_eq!(cfg.d, 3);
        assert_eq!(cfg.delta, 2);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.max_steps, 500);
        assert!(cfg.idle_fast_forward);
        assert!(!SimConfig::new(2, 0).idle_fast_forward, "off by default");
        assert_eq!(cfg.latency_unit(), 5);
        cfg.validate().unwrap();
    }

    #[test]
    fn default_config_is_valid() {
        SimConfig::new(8, 3).validate().unwrap();
        SimConfig::new(1, 0).validate().unwrap();
    }

    #[test]
    fn rejects_zero_processes() {
        assert!(matches!(
            SimConfig::new(0, 0).validate(),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn rejects_n_beyond_the_supported_range() {
        SimConfig::new(MAX_PROCESSES, 0).validate().unwrap();
        let err = SimConfig::new(MAX_PROCESSES + 1, 0).validate().unwrap_err();
        match err {
            SimError::InvalidConfig { reason } => {
                assert!(
                    reason.contains("2^20"),
                    "reason should name the cap: {reason}"
                )
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn rejects_f_equal_n() {
        assert!(SimConfig::new(4, 4).validate().is_err());
        assert!(SimConfig::new(4, 5).validate().is_err());
    }

    #[test]
    fn rejects_zero_bounds() {
        assert!(SimConfig::new(4, 1).with_d(0).validate().is_err());
        assert!(SimConfig::new(4, 1).with_delta(0).validate().is_err());
        assert!(SimConfig::new(4, 1).with_max_steps(0).validate().is_err());
    }

    #[test]
    fn default_step_limit_scales_with_n() {
        assert!(default_max_steps(1024) > default_max_steps(16));
    }
}
