//! Execution metrics.
//!
//! These counters are exactly the quantities the paper's theorems bound:
//! total point-to-point messages sent (message complexity), the time at which
//! every correct process has completed (time complexity, measured in steps
//! and typically normalised by `d + δ`), and the *actual* `d` and `δ`
//! realised by the adversary's choices.

use crate::process::ProcessId;
use crate::time::TimeStep;

/// Counters accumulated while a [`crate::Simulation`] runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    /// Total point-to-point messages sent by all processes.
    pub messages_sent: u64,
    /// Total messages delivered to their recipients.
    pub messages_delivered: u64,
    /// Messages dropped because their recipient crashed.
    pub messages_dropped: u64,
    /// Per-process count of messages sent.
    pub sent_by: Vec<u64>,
    /// Per-process count of messages delivered.
    pub delivered_to: Vec<u64>,
    /// Per-process count of local steps taken.
    pub steps_by: Vec<u64>,
    /// Number of processes that have crashed so far.
    pub crashes: usize,
    /// Largest observed delivery delay (send → delivery), i.e. the actual `d`
    /// realised by the execution so far.
    pub max_delivery_delay: u64,
    /// Largest observed gap between consecutive schedulings of a live
    /// process, i.e. the actual `δ` realised so far.
    pub max_schedule_gap: u64,
    /// The first time at which every non-crashed process was quiescent and no
    /// deliverable message remained in flight, if that has happened.
    pub quiescence_time: Option<TimeStep>,
    /// Total number of global time steps executed.
    pub elapsed_steps: u64,
    /// Idle time steps the run loop skipped by jumping straight to the next
    /// delivery deadline (see [`crate::SimConfig::idle_fast_forward`]);
    /// always zero when fast-forward is disabled. Skipped steps advance the
    /// clock but are not counted in [`Self::elapsed_steps`].
    pub idle_steps_skipped: u64,
}

impl Metrics {
    /// Creates zeroed metrics for `n` processes.
    pub fn new(n: usize) -> Self {
        Metrics {
            messages_sent: 0,
            messages_delivered: 0,
            messages_dropped: 0,
            sent_by: vec![0; n],
            delivered_to: vec![0; n],
            steps_by: vec![0; n],
            crashes: 0,
            max_delivery_delay: 0,
            max_schedule_gap: 0,
            quiescence_time: None,
            elapsed_steps: 0,
            idle_steps_skipped: 0,
        }
    }

    /// Records that `by` sent `count` point-to-point messages.
    pub fn record_sent(&mut self, by: ProcessId, count: u64) {
        self.messages_sent += count;
        self.sent_by[by.index()] += count;
    }

    /// Records that `to` was delivered a message sent at `sent_at`, now.
    pub fn record_delivery(&mut self, to: ProcessId, sent_at: TimeStep, now: TimeStep) {
        self.messages_delivered += 1;
        self.delivered_to[to.index()] += 1;
        let delay = now.since(sent_at);
        if delay > self.max_delivery_delay {
            self.max_delivery_delay = delay;
        }
    }

    /// Records that `count` messages addressed to a crashed process were
    /// discarded.
    pub fn record_dropped(&mut self, count: u64) {
        self.messages_dropped += count;
    }

    /// Records a local step by `pid` whose previous step was at
    /// `last_scheduled`.
    pub fn record_step(&mut self, pid: ProcessId, last_scheduled: TimeStep, now: TimeStep) {
        self.steps_by[pid.index()] += 1;
        let gap = now.since(last_scheduled);
        if gap > self.max_schedule_gap {
            self.max_schedule_gap = gap;
        }
    }

    /// Records a crash.
    pub fn record_crash(&mut self) {
        self.crashes += 1;
    }

    /// Records the quiescence time if not already set.
    pub fn record_quiescence(&mut self, at: TimeStep) {
        if self.quiescence_time.is_none() {
            self.quiescence_time = Some(at);
        }
    }

    /// Time complexity of the execution expressed in multiples of `d + δ`,
    /// rounded up, using the *configured* bounds `d` and `delta`.
    ///
    /// Returns `None` if the execution never became quiescent.
    pub fn normalized_time(&self, d: u64, delta: u64) -> Option<f64> {
        self.quiescence_time
            .map(|t| t.as_u64() as f64 / (d + delta) as f64)
    }

    /// Mean number of messages sent per process.
    pub fn mean_sent_per_process(&self) -> f64 {
        if self.sent_by.is_empty() {
            0.0
        } else {
            self.messages_sent as f64 / self.sent_by.len() as f64
        }
    }

    /// Largest number of messages sent by any single process.
    pub fn max_sent_by_any(&self) -> u64 {
        self.sent_by.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_metrics_are_zeroed() {
        let m = Metrics::new(3);
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.sent_by, vec![0, 0, 0]);
        assert_eq!(m.quiescence_time, None);
        assert_eq!(m.mean_sent_per_process(), 0.0);
        assert_eq!(m.max_sent_by_any(), 0);
    }

    #[test]
    fn sends_accumulate_per_process_and_globally() {
        let mut m = Metrics::new(2);
        m.record_sent(ProcessId(0), 3);
        m.record_sent(ProcessId(1), 2);
        m.record_sent(ProcessId(0), 1);
        assert_eq!(m.messages_sent, 6);
        assert_eq!(m.sent_by, vec![4, 2]);
        assert_eq!(m.max_sent_by_any(), 4);
        assert!((m.mean_sent_per_process() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn delivery_tracks_max_delay() {
        let mut m = Metrics::new(2);
        m.record_delivery(ProcessId(1), TimeStep(0), TimeStep(4));
        m.record_delivery(ProcessId(1), TimeStep(3), TimeStep(4));
        assert_eq!(m.messages_delivered, 2);
        assert_eq!(m.delivered_to[1], 2);
        assert_eq!(m.max_delivery_delay, 4);
    }

    #[test]
    fn steps_track_max_gap() {
        let mut m = Metrics::new(1);
        m.record_step(ProcessId(0), TimeStep(0), TimeStep(0));
        m.record_step(ProcessId(0), TimeStep(0), TimeStep(5));
        m.record_step(ProcessId(0), TimeStep(5), TimeStep(6));
        assert_eq!(m.steps_by[0], 3);
        assert_eq!(m.max_schedule_gap, 5);
    }

    #[test]
    fn quiescence_records_first_time_only() {
        let mut m = Metrics::new(1);
        m.record_quiescence(TimeStep(10));
        m.record_quiescence(TimeStep(20));
        assert_eq!(m.quiescence_time, Some(TimeStep(10)));
        assert_eq!(m.normalized_time(3, 2), Some(2.0));
    }

    #[test]
    fn normalized_time_none_without_quiescence() {
        let m = Metrics::new(1);
        assert_eq!(m.normalized_time(1, 1), None);
    }

    #[test]
    fn crash_and_drop_counters() {
        let mut m = Metrics::new(2);
        m.record_crash();
        m.record_dropped(5);
        assert_eq!(m.crashes, 1);
        assert_eq!(m.messages_dropped, 5);
    }
}
