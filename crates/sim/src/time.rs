//! Discrete time.
//!
//! The paper's analysis assumes time proceeds in discrete steps; all
//! complexity bounds are stated in units of `(d + δ)` time steps. We use a
//! simple `u64` newtype so step arithmetic cannot be confused with message
//! counts or process identifiers.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A discrete point in time (a global step counter maintained by the
/// simulator). The first step of an execution is `TimeStep(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeStep(pub u64);

impl TimeStep {
    /// The beginning of every execution.
    pub const ZERO: TimeStep = TimeStep(0);

    /// Returns the raw step counter.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the time `steps` steps later.
    #[inline]
    pub fn after(self, steps: u64) -> TimeStep {
        TimeStep(self.0.saturating_add(steps))
    }

    /// Number of steps elapsed since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: TimeStep) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Advances this time by one step.
    #[inline]
    pub fn tick(&mut self) {
        self.0 += 1;
    }
}

impl fmt::Display for TimeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl Add<u64> for TimeStep {
    type Output = TimeStep;

    fn add(self, rhs: u64) -> TimeStep {
        self.after(rhs)
    }
}

impl AddAssign<u64> for TimeStep {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<TimeStep> for TimeStep {
    type Output = u64;

    fn sub(self, rhs: TimeStep) -> u64 {
        self.since(rhs)
    }
}

impl From<u64> for TimeStep {
    fn from(value: u64) -> Self {
        TimeStep(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(TimeStep::default(), TimeStep::ZERO);
        assert_eq!(TimeStep::ZERO.as_u64(), 0);
    }

    #[test]
    fn after_advances() {
        let t = TimeStep(10);
        assert_eq!(t.after(5), TimeStep(15));
        assert_eq!(t + 5, TimeStep(15));
    }

    #[test]
    fn since_saturates() {
        let early = TimeStep(3);
        let late = TimeStep(9);
        assert_eq!(late.since(early), 6);
        assert_eq!(early.since(late), 0);
        assert_eq!(late - early, 6);
    }

    #[test]
    fn tick_increments() {
        let mut t = TimeStep::ZERO;
        t.tick();
        t.tick();
        assert_eq!(t, TimeStep(2));
    }

    #[test]
    fn after_saturates_at_max() {
        let t = TimeStep(u64::MAX - 1);
        assert_eq!(t.after(10), TimeStep(u64::MAX));
    }

    #[test]
    fn display_format() {
        assert_eq!(TimeStep(42).to_string(), "t42");
    }

    #[test]
    fn ordering_follows_counter() {
        assert!(TimeStep(1) < TimeStep(2));
        assert!(TimeStep(2) >= TimeStep(2));
    }

    #[test]
    fn from_u64_round_trips() {
        let t: TimeStep = 7u64.into();
        assert_eq!(t.as_u64(), 7);
    }
}
