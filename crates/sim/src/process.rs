//! Process identities, liveness status, and the local-step interface.
//!
//! A [`Process`] is the paper's notion of an algorithm at one node (Section
//! 1): in each *local step* it receives a batch of delivered messages,
//! computes, and sends zero or more messages; it may also declare itself
//! quiescent, the property the gossip specification's termination condition
//! is stated in terms of. Crashes ([`ProcessStatus::Crashed`]) are permanent
//! and controlled by the adversary within the budget `f`.

use std::fmt;

use crate::message::{Envelope, Outbox};
use crate::time::TimeStep;

/// Identifier of a process, an index in `0..n`.
///
/// The paper numbers processes `1..=n`; we use zero-based indices so that a
/// `ProcessId` can directly index per-process vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Iterator over all process identifiers of a system of size `n`.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(value: usize) -> Self {
        ProcessId(value)
    }
}

/// Liveness status of a process as tracked by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessStatus {
    /// The process is alive and may be scheduled.
    Alive,
    /// The process crashed at the recorded time; it permanently halts and is
    /// never scheduled again. Messages addressed to it are dropped.
    Crashed {
        /// The time step at which the crash took effect.
        at: TimeStep,
    },
}

impl ProcessStatus {
    /// True if the process has not crashed.
    #[inline]
    pub fn is_alive(self) -> bool {
        matches!(self, ProcessStatus::Alive)
    }

    /// True if the process has crashed.
    #[inline]
    pub fn is_crashed(self) -> bool {
        !self.is_alive()
    }
}

/// The local-step interface implemented by every protocol that runs on the
/// simulator.
///
/// A local step corresponds exactly to the paper's notion: the process first
/// receives a batch of messages (those the adversary has allowed to be
/// delivered by now), then computes, then sends zero or more messages by
/// pushing them into the [`Outbox`].
pub trait Process {
    /// The message payload exchanged by this protocol.
    type Message: Clone + fmt::Debug;

    /// Executes one local step at time `now`.
    ///
    /// `inbox` contains every message delivered at this step (possibly
    /// empty), in send order; implementations typically `drain(..)` it. The
    /// buffer is owned by the simulator and reused across steps, so
    /// steady-state stepping performs no inbox allocation; anything left in
    /// it after the step is discarded. Outgoing messages are pushed into
    /// `out`; the simulator stamps them with the current time and hands them
    /// to the network.
    fn on_step(
        &mut self,
        now: TimeStep,
        inbox: &mut Vec<Envelope<Self::Message>>,
        out: &mut Outbox<Self::Message>,
    );

    /// True when the process has (for now) stopped sending messages: it will
    /// not send anything in subsequent steps unless it first receives a
    /// message that reactivates it.
    ///
    /// This is the paper's *quiescence* notion. Note that quiescence is not
    /// necessarily permanent for every protocol — e.g. an `ears` process
    /// wakes up from its sleep if it learns about a rumor that has not been
    /// sent everywhere — which is why the simulator only declares an
    /// execution finished when all processes are quiescent *and* no messages
    /// remain in flight.
    fn is_quiescent(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_and_index() {
        let p = ProcessId(3);
        assert_eq!(p.to_string(), "p3");
        assert_eq!(p.index(), 3);
        let q: ProcessId = 5usize.into();
        assert_eq!(q, ProcessId(5));
    }

    #[test]
    fn all_enumerates_n_ids() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(
            ids,
            vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(3)]
        );
    }

    #[test]
    fn status_liveness() {
        assert!(ProcessStatus::Alive.is_alive());
        assert!(!ProcessStatus::Alive.is_crashed());
        let crashed = ProcessStatus::Crashed { at: TimeStep(7) };
        assert!(crashed.is_crashed());
        assert!(!crashed.is_alive());
    }

    #[test]
    fn process_ids_order_by_index() {
        assert!(ProcessId(1) < ProcessId(2));
    }
}
