//! The adversary interface and a reference oblivious adversary.
//!
//! In the paper's model the adversary controls three things: which processes
//! take a local step at each time step, which processes crash (subject to the
//! budget `f`), and how long each message takes to be delivered (subject, in
//! `(d, δ)`-bounded executions, to the bound `d`).
//!
//! * An **oblivious** adversary commits to all of these choices before the
//!   execution starts; in particular its choices cannot depend on the random
//!   coin flips of the processes. All adversaries implementing [`Adversary`]
//!   whose decisions depend only on `(time, process identities)` and their own
//!   pre-seeded randomness are oblivious.
//! * An **adaptive** adversary may observe the execution (who sent how many
//!   messages, which processes look quiescent) and react. The lower-bound
//!   adversary of Theorem 1 even simulates processes in isolation; it
//!   therefore does not implement this trait but drives
//!   [`crate::Simulation`] manually through its low-level stepping API (see
//!   `agossip-adversary::theorem1`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::message::EnvelopeMeta;
use crate::process::{ProcessId, ProcessStatus};
use crate::rng::{rng_for, RngStream};
use crate::time::TimeStep;

/// A read-only view of the execution state offered to adversaries.
///
/// The view deliberately exposes only payload-independent information: even
/// an adaptive adversary in the paper's model cannot read message contents,
/// but it can observe traffic patterns, crashes, and which processes have
/// stopped sending.
#[derive(Debug, Clone, Copy)]
pub struct SystemView<'a> {
    /// The current time step.
    pub now: TimeStep,
    /// System size.
    pub n: usize,
    /// Failure budget.
    pub f: usize,
    /// Per-process liveness.
    pub statuses: &'a [ProcessStatus],
    /// Per-process count of messages sent so far.
    pub sent_by: &'a [u64],
    /// Per-process time of the most recent local step.
    pub last_scheduled: &'a [TimeStep],
    /// Per-process quiescence flags (as reported by the protocol).
    pub quiescent: &'a [bool],
    /// Number of messages currently in flight. During delay assignment this
    /// is the count *before* the current step's outgoing batch is handed to
    /// the network: the view is snapshotted once per batch, not rebuilt
    /// between sends.
    pub in_flight: usize,
    /// Number of crashes so far.
    pub crashes: usize,
}

impl<'a> SystemView<'a> {
    /// Identifiers of all processes that are still alive.
    pub fn alive(&self) -> impl Iterator<Item = ProcessId> + 'a {
        let statuses = self.statuses;
        statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_alive())
            .map(|(i, _)| ProcessId(i))
    }

    /// Remaining crash budget.
    pub fn remaining_crash_budget(&self) -> usize {
        self.f.saturating_sub(self.crashes)
    }
}

/// The adversary's decisions for one time step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepPlan {
    /// Processes scheduled to take a local step (crashed ones are ignored).
    pub schedule: Vec<ProcessId>,
    /// Processes to crash at this step, before anyone takes a local step.
    pub crash: Vec<ProcessId>,
}

impl StepPlan {
    /// A plan that schedules exactly the given processes and crashes nobody.
    pub fn schedule_only(schedule: Vec<ProcessId>) -> Self {
        StepPlan {
            schedule,
            crash: Vec::new(),
        }
    }
}

/// Adversary interface used by [`crate::Simulation::run_with`].
pub trait Adversary {
    /// Chooses which processes step and which crash at the current time.
    fn plan_step(&mut self, view: &SystemView<'_>) -> StepPlan;

    /// Chooses the delivery delay (in time steps, at least 1) for a message
    /// that was just sent. Returning `u64::MAX` withholds the message for the
    /// rest of the execution.
    fn message_delay(&mut self, meta: &EnvelopeMeta, view: &SystemView<'_>) -> u64;
}

/// The reference oblivious `(d, δ)`-adversary.
///
/// * Every live process is scheduled with probability `1/δ` per step, and is
///   always scheduled once its gap since the previous step reaches `δ`, so
///   the execution is `δ`-fair.
/// * Every message receives an independent uniformly random delay in
///   `[1, d]`.
/// * Crashes happen at pre-committed `(time, process)` pairs.
///
/// Because every choice is a function of `(time, identities)` and of
/// randomness fixed by the seed at construction time, this adversary is
/// oblivious in the paper's sense.
#[derive(Debug, Clone)]
pub struct FairObliviousAdversary {
    d: u64,
    delta: u64,
    rng: StdRng,
    /// Sorted list of scheduled crashes (time, victim).
    crash_plan: Vec<(TimeStep, ProcessId)>,
}

impl FairObliviousAdversary {
    /// Creates an adversary honouring bounds `d` and `delta`, deriving its
    /// randomness from `seed`, with no crashes.
    pub fn new(d: u64, delta: u64, seed: u64) -> Self {
        FairObliviousAdversary {
            d: d.max(1),
            delta: delta.max(1),
            rng: rng_for(seed, RngStream::Adversary),
            crash_plan: Vec::new(),
        }
    }

    /// Adds a pre-committed crash of `victim` at time `at`.
    pub fn with_crash(mut self, at: TimeStep, victim: ProcessId) -> Self {
        self.crash_plan.push((at, victim));
        self.crash_plan.sort_by_key(|(t, _)| *t);
        self
    }

    /// Adds a batch of pre-committed crashes.
    pub fn with_crashes(
        mut self,
        crashes: impl IntoIterator<Item = (TimeStep, ProcessId)>,
    ) -> Self {
        self.crash_plan.extend(crashes);
        self.crash_plan.sort_by_key(|(t, _)| *t);
        self
    }

    /// The delivery bound this adversary honours.
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The scheduling bound this adversary honours.
    pub fn delta(&self) -> u64 {
        self.delta
    }
}

impl Adversary for FairObliviousAdversary {
    fn plan_step(&mut self, view: &SystemView<'_>) -> StepPlan {
        let mut schedule = Vec::new();
        for pid in view.alive() {
            let gap = view.now.since(view.last_scheduled[pid.index()]);
            let forced = gap + 1 >= self.delta;
            if forced || self.rng.gen_range(0..self.delta) == 0 {
                schedule.push(pid);
            }
        }
        let crash = self
            .crash_plan
            .iter()
            .filter(|(t, pid)| *t <= view.now && view.statuses[pid.index()].is_alive())
            .map(|(_, pid)| *pid)
            .collect();
        StepPlan { schedule, crash }
    }

    fn message_delay(&mut self, _meta: &EnvelopeMeta, _view: &SystemView<'_>) -> u64 {
        self.rng.gen_range(1..=self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_fixture<'a>(
        now: TimeStep,
        statuses: &'a [ProcessStatus],
        sent: &'a [u64],
        last: &'a [TimeStep],
        quiescent: &'a [bool],
    ) -> SystemView<'a> {
        SystemView {
            now,
            n: statuses.len(),
            f: 1,
            statuses,
            sent_by: sent,
            last_scheduled: last,
            quiescent,
            in_flight: 0,
            crashes: 0,
        }
    }

    #[test]
    fn unit_delta_schedules_everyone_every_step() {
        let statuses = [ProcessStatus::Alive; 5];
        let sent = [0; 5];
        let last = [TimeStep::ZERO; 5];
        let quiescent = [false; 5];
        let view = view_fixture(TimeStep(3), &statuses, &sent, &last, &quiescent);
        let mut adv = FairObliviousAdversary::new(1, 1, 7);
        let plan = adv.plan_step(&view);
        assert_eq!(plan.schedule.len(), 5);
        assert!(plan.crash.is_empty());
    }

    #[test]
    fn crashed_processes_are_not_scheduled() {
        let statuses = [
            ProcessStatus::Alive,
            ProcessStatus::Crashed { at: TimeStep(0) },
            ProcessStatus::Alive,
        ];
        let sent = [0; 3];
        let last = [TimeStep::ZERO; 3];
        let quiescent = [false; 3];
        let view = view_fixture(TimeStep(1), &statuses, &sent, &last, &quiescent);
        let mut adv = FairObliviousAdversary::new(1, 1, 7);
        let plan = adv.plan_step(&view);
        assert_eq!(plan.schedule, vec![ProcessId(0), ProcessId(2)]);
    }

    #[test]
    fn delta_fairness_forces_overdue_processes() {
        let statuses = [ProcessStatus::Alive; 2];
        let sent = [0; 2];
        // Process 0 last ran at t0; at t3 with delta = 4 its gap is 3 and the
        // forced condition (gap + 1 >= delta) triggers.
        let last = [TimeStep(0), TimeStep(3)];
        let quiescent = [false; 2];
        let view = view_fixture(TimeStep(3), &statuses, &sent, &last, &quiescent);
        let mut adv = FairObliviousAdversary::new(1, 4, 1234);
        // Run the plan many times (the RNG part varies) — process 0 must be
        // scheduled every time because it is overdue.
        for _ in 0..20 {
            let plan = adv.plan_step(&view);
            assert!(plan.schedule.contains(&ProcessId(0)));
        }
    }

    #[test]
    fn delays_respect_bound_d() {
        let statuses = [ProcessStatus::Alive; 2];
        let sent = [0; 2];
        let last = [TimeStep::ZERO; 2];
        let quiescent = [false; 2];
        let view = view_fixture(TimeStep(0), &statuses, &sent, &last, &quiescent);
        let mut adv = FairObliviousAdversary::new(5, 1, 99);
        let meta = EnvelopeMeta {
            from: ProcessId(0),
            to: ProcessId(1),
            sent_at: TimeStep(0),
        };
        for _ in 0..200 {
            let delay = adv.message_delay(&meta, &view);
            assert!((1..=5).contains(&delay));
        }
    }

    #[test]
    fn crash_plan_fires_at_or_after_scheduled_time() {
        let statuses = [ProcessStatus::Alive; 3];
        let sent = [0; 3];
        let last = [TimeStep::ZERO; 3];
        let quiescent = [false; 3];
        let mut adv = FairObliviousAdversary::new(1, 1, 7).with_crash(TimeStep(5), ProcessId(2));
        let early = view_fixture(TimeStep(4), &statuses, &sent, &last, &quiescent);
        assert!(adv.plan_step(&early).crash.is_empty());
        let due = view_fixture(TimeStep(5), &statuses, &sent, &last, &quiescent);
        assert_eq!(adv.plan_step(&due).crash, vec![ProcessId(2)]);
    }

    #[test]
    fn system_view_alive_and_budget() {
        let statuses = [
            ProcessStatus::Alive,
            ProcessStatus::Crashed { at: TimeStep(1) },
        ];
        let sent = [0; 2];
        let last = [TimeStep::ZERO; 2];
        let quiescent = [false; 2];
        let mut view = view_fixture(TimeStep(2), &statuses, &sent, &last, &quiescent);
        view.crashes = 1;
        view.f = 1;
        let alive: Vec<_> = view.alive().collect();
        assert_eq!(alive, vec![ProcessId(0)]);
        assert_eq!(view.remaining_crash_budget(), 0);
    }

    #[test]
    fn step_plan_schedule_only_has_no_crashes() {
        let plan = StepPlan::schedule_only(vec![ProcessId(1)]);
        assert_eq!(plan.schedule, vec![ProcessId(1)]);
        assert!(plan.crash.is_empty());
    }
}
