//! # agossip-sim
//!
//! A discrete-event model of the asynchronous, crash-prone, message-passing
//! system used in *"On the Complexity of Asynchronous Gossip"* (Georgiou,
//! Gilbert, Guerraoui, Kowalski — PODC 2008).
//!
//! The model follows Section 1 ("System Model") of the paper:
//!
//! * There are `n` processes with identifiers `1..=n` (represented here as
//!   [`ProcessId`] indices `0..n`). Up to `f < n` of them may crash.
//! * Time proceeds in discrete [`TimeStep`]s. At every time step an arbitrary
//!   subset of the processes is *scheduled* to take a local step. In a local
//!   step a process (1) receives some subset of the messages sent to it,
//!   (2) performs local computation, and (3) sends zero or more messages.
//! * For a given execution, `d` is the maximum delivery time of any message
//!   and `δ` is the maximum scheduling gap: if `p` sends `m` to `q` at time
//!   `t` and `q` is scheduled at any `t' ≥ t + d`, then `q` receives `m` no
//!   later than `t'`; in any window of `δ` consecutive time steps every
//!   non-crashed process is scheduled at least once.
//! * An *adversary* decides which processes are scheduled and which crash at
//!   each time step, and how long each message is delayed. An **oblivious**
//!   adversary fixes these decisions in advance; an **adaptive** adversary
//!   may react to the execution (including the random choices made by the
//!   processes).
//!
//! The crate provides:
//!
//! * [`Process`] — the local-step state-machine interface protocols implement.
//! * [`Simulation`] — the execution engine: it owns the processes, the
//!   in-flight message buffer, and the metrics, and advances time one step at
//!   a time under the control of an [`Adversary`] (or under manual control,
//!   which is what the adaptive lower-bound adversary in `agossip-adversary`
//!   uses). Both stepping modes share one zero-allocation step core, and
//!   [`Simulation::run_until`] can optionally fast-forward over idle windows
//!   (see [`SimConfig::idle_fast_forward`]).
//! * [`Network`] — the in-flight buffer, deadline-indexed per destination so
//!   delivery collection touches only due messages instead of scanning whole
//!   queues.
//! * [`adversary`] — the adversary trait plus a family of oblivious
//!   schedule/delay/crash policies.
//! * [`metrics`] — message, step, delay and quiescence accounting; these are
//!   exactly the quantities bounded by the paper's theorems.
//!
//! The simulator is fully deterministic given a [`SimConfig::seed`]: all
//! randomness (both the adversary's and the protocols') flows from seeded
//! [`rand::rngs::StdRng`] instances.
//!
//! ## Thread-safety contract
//!
//! Independent trials of an experiment are routinely sharded across OS
//! threads (the parallel sweep engine in `agossip-analysis::sweep` does
//! exactly that), so the run entry points are `Send`able: a [`Simulation`]
//! over `Send` processes, every bundled adversary, and all reports and
//! metrics can be moved to a worker thread. This is asserted at compile time
//! below — introducing an `Rc`/`RefCell` into the engine is a build error,
//! not a latent sweep-engine bug. Combined with [`rng::trial_seed`], a trial
//! is a pure function of its spec: running it on any thread, in any order,
//! produces bit-identical results.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms, unreachable_pub)]
#![warn(missing_docs)]

pub mod adversary;
pub mod config;
pub mod error;
pub mod message;
pub mod metrics;
pub mod network;
pub mod process;
pub mod rng;
pub mod scheduler;
pub mod time;

pub use adversary::{Adversary, FairObliviousAdversary, StepPlan, SystemView};
pub use config::{SimConfig, MAX_PROCESSES};
pub use error::{SimError, SimResult};
pub use message::{Envelope, EnvelopeMeta, Outbox};
pub use metrics::Metrics;
pub use network::Network;
pub use process::{Process, ProcessId, ProcessStatus};
pub use scheduler::{RunOutcome, Simulation, StopReason};
pub use time::TimeStep;

// Compile-time proof of the thread-safety contract documented above: a
// simulation over `Send` processes, the reference adversary, and everything
// a finished trial hands back can be moved across threads.
#[allow(dead_code)]
fn assert_entry_points_are_send() {
    fn assert_send<T: Send>() {}
    fn simulation_is_send<P>()
    where
        P: Process + Send,
        P::Message: Send,
    {
        assert_send::<Simulation<P>>();
    }
    assert_send::<SimConfig>();
    assert_send::<FairObliviousAdversary>();
    assert_send::<Metrics>();
    assert_send::<SimError>();
}
