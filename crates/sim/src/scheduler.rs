//! The simulation engine.
//!
//! [`Simulation`] owns the process state machines, the network, and the
//! metrics, and advances time one discrete step at a time. Two driving modes
//! are offered:
//!
//! * [`Simulation::run_with`] — the common case: an [`Adversary`]
//!   implementation chooses schedules, crashes, and delays, and the loop runs
//!   until the system is quiescent or the step limit is hit.
//! * [`Simulation::step_manual`] — low-level control used by *adaptive*
//!   adversaries (notably the Theorem 1 lower-bound adversary in
//!   `agossip-adversary`), which need to schedule precise subsets of
//!   processes, withhold messages, and inspect pending traffic.

use crate::adversary::{Adversary, StepPlan, SystemView};
use crate::config::SimConfig;
use crate::error::{SimError, SimResult};
use crate::message::{Envelope, EnvelopeMeta, Outbox};
use crate::metrics::Metrics;
use crate::network::Network;
use crate::process::{Process, ProcessId, ProcessStatus};
use crate::time::TimeStep;

/// Why a run loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every non-crashed process is quiescent and no message is in flight.
    Quiescent,
    /// The caller-provided predicate returned true.
    Predicate,
    /// The configured step limit was reached.
    StepLimit,
}

/// Summary of a completed run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why the loop stopped.
    pub reason: StopReason,
    /// The time at which it stopped.
    pub stopped_at: TimeStep,
}

/// The discrete-event simulator.
#[derive(Debug, Clone)]
pub struct Simulation<P: Process> {
    config: SimConfig,
    processes: Vec<P>,
    statuses: Vec<ProcessStatus>,
    quiescent: Vec<bool>,
    last_scheduled: Vec<TimeStep>,
    network: Network<P::Message>,
    metrics: Metrics,
    now: TimeStep,
    /// Reusable delivery buffer handed to each local step; cleared between
    /// processes so steady-state stepping allocates nothing.
    inbox: Vec<Envelope<P::Message>>,
    /// Reusable outbox handed to each local step.
    outbox: Outbox<P::Message>,
    /// Reusable buffer of `(envelope, delay)` pairs produced by one global
    /// step, filled before the batch is handed to the network.
    outgoing: Vec<(Envelope<P::Message>, u64)>,
}

impl<P: Process> Simulation<P> {
    /// Creates a simulation over the given process state machines.
    ///
    /// `processes[i]` is the state machine of [`ProcessId`]`(i)`; its length
    /// must equal `config.n`.
    pub fn new(config: SimConfig, processes: Vec<P>) -> SimResult<Self> {
        config.validate()?;
        if processes.len() != config.n {
            return Err(SimError::ProcessCountMismatch {
                expected: config.n,
                actual: processes.len(),
            });
        }
        let n = config.n;
        let quiescent = processes.iter().map(|p| p.is_quiescent()).collect();
        Ok(Simulation {
            config,
            processes,
            statuses: vec![ProcessStatus::Alive; n],
            quiescent,
            last_scheduled: vec![TimeStep::ZERO; n],
            network: Network::new(n),
            metrics: Metrics::new(n),
            now: TimeStep::ZERO,
            inbox: Vec::new(),
            outbox: Outbox::new(),
            outgoing: Vec::new(),
        })
    }

    /// The configuration this simulation was created with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The current time.
    pub fn now(&self) -> TimeStep {
        self.now
    }

    /// Read access to the metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Per-process liveness.
    pub fn statuses(&self) -> &[ProcessStatus] {
        &self.statuses
    }

    /// Read access to process `pid`'s state machine.
    pub fn process(&self, pid: ProcessId) -> &P {
        &self.processes[pid.index()]
    }

    /// Mutable access to process `pid`'s state machine (used by test
    /// harnesses and by directors that need to inject state).
    pub fn process_mut(&mut self, pid: ProcessId) -> &mut P {
        &mut self.processes[pid.index()]
    }

    /// Read access to all process state machines.
    pub fn processes(&self) -> &[P] {
        &self.processes
    }

    /// Identifiers of processes that are still alive.
    pub fn alive(&self) -> Vec<ProcessId> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_alive())
            .map(|(i, _)| ProcessId(i))
            .collect()
    }

    /// True if `pid` is alive.
    pub fn is_alive(&self, pid: ProcessId) -> bool {
        self.statuses[pid.index()].is_alive()
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.network.in_flight()
    }

    /// Clones of the messages currently queued for `pid` (regardless of
    /// delivery deadline). Used by adaptive adversaries that simulate a
    /// process "receiving any messages from S1" (Theorem 1).
    pub fn pending_messages_for(&self, pid: ProcessId) -> Vec<Envelope<P::Message>> {
        self.network.clone_pending_for(pid)
    }

    /// True when every non-crashed process reports quiescence and no message
    /// remains in flight.
    pub fn system_quiescent(&self) -> bool {
        let all_quiet = self
            .statuses
            .iter()
            .zip(&self.quiescent)
            .all(|(s, q)| s.is_crashed() || *q);
        all_quiet && self.network.is_empty()
    }

    /// Like [`Self::system_quiescent`] but treats messages withheld beyond
    /// `horizon` as undeliverable (used by adaptive drivers that withhold
    /// messages forever).
    pub fn system_quiescent_ignoring_withheld(&self, horizon: TimeStep) -> bool {
        let all_quiet = self
            .statuses
            .iter()
            .zip(&self.quiescent)
            .all(|(s, q)| s.is_crashed() || *q);
        all_quiet && self.network.all_beyond(horizon)
    }

    /// Crashes `pid` immediately (before any further local steps). Messages
    /// already queued for it are discarded. Returns an error if the crash
    /// budget `f` would be exceeded; crashing an already-crashed process is a
    /// no-op.
    pub fn crash(&mut self, pid: ProcessId) -> SimResult<()> {
        if pid.index() >= self.config.n {
            return Err(SimError::UnknownProcess {
                pid,
                n: self.config.n,
            });
        }
        if self.statuses[pid.index()].is_crashed() {
            return Ok(());
        }
        if self.metrics.crashes + 1 > self.config.f {
            return Err(SimError::CrashBudgetExceeded {
                budget: self.config.f,
                requested: self.metrics.crashes + 1,
            });
        }
        self.statuses[pid.index()] = ProcessStatus::Crashed { at: self.now };
        let dropped = self.network.drop_for(pid);
        self.metrics.record_dropped(dropped as u64);
        self.metrics.record_crash();
        Ok(())
    }

    /// Builds the read-only view handed to adversaries.
    fn view(&self) -> SystemView<'_> {
        SystemView {
            now: self.now,
            n: self.config.n,
            f: self.config.f,
            statuses: &self.statuses,
            sent_by: &self.metrics.sent_by,
            last_scheduled: &self.last_scheduled,
            quiescent: &self.quiescent,
            in_flight: self.network.in_flight(),
            crashes: self.metrics.crashes,
        }
    }

    /// Executes one global time step under manual control.
    ///
    /// `crashes` are applied first (before any local step), then every alive
    /// process in `schedule` takes one local step: it receives every message
    /// whose delivery deadline has passed, computes, and sends. Each sent
    /// message is assigned the delay returned by `delay_for`; a returned
    /// value of `u64::MAX` withholds the message for the rest of the
    /// execution, and any other value outside `1..=config.d` is rejected
    /// with [`SimError::DelayOutOfBounds`].
    pub fn step_manual(
        &mut self,
        schedule: &[ProcessId],
        crashes: &[ProcessId],
        mut delay_for: impl FnMut(&EnvelopeMeta) -> u64,
    ) -> SimResult<()> {
        self.step_core(schedule, crashes, |meta, _view| delay_for(meta))
    }

    /// Executes one global time step under the control of `adversary`.
    ///
    /// The adversary's `message_delay` is called once per outgoing message
    /// against a single [`SystemView`] snapshot taken after the batch of
    /// local steps (the view does not change between the batch's delay
    /// decisions). Delays are validated like in [`Self::step_manual`].
    pub fn step_with<A: Adversary>(&mut self, adversary: &mut A) -> SimResult<()> {
        let StepPlan { schedule, crash } = adversary.plan_step(&self.view());
        self.step_core(&schedule, &crash, |meta, view| {
            adversary.message_delay(meta, view)
        })
    }

    /// The step body shared by [`Self::step_manual`] and [`Self::step_with`].
    ///
    /// One global time step: apply `crashes`, let every alive process in
    /// `schedule` take a local step (receive due messages, compute, send),
    /// then assign each outgoing message the delay chosen by `delay_for` and
    /// hand it to the network. Uses the simulation's reusable
    /// inbox/outbox/outgoing buffers, so steady-state stepping performs no
    /// allocation.
    fn step_core<F>(
        &mut self,
        schedule: &[ProcessId],
        crashes: &[ProcessId],
        mut delay_for: F,
    ) -> SimResult<()>
    where
        F: FnMut(&EnvelopeMeta, &SystemView<'_>) -> u64,
    {
        for &victim in crashes {
            self.crash(victim)?;
        }

        // The buffers are moved out for the duration of the step so the
        // borrow checker can see they are disjoint from `self`; they are
        // moved back (with their capacity) on the success path. Error paths
        // drop them — every `SimError` here is terminal for the run.
        let mut inbox = std::mem::take(&mut self.inbox);
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut outgoing = std::mem::take(&mut self.outgoing);

        for &pid in schedule {
            if pid.index() >= self.config.n {
                return Err(SimError::UnknownProcess {
                    pid,
                    n: self.config.n,
                });
            }
            if self.statuses[pid.index()].is_crashed() {
                continue;
            }
            inbox.clear();
            self.network
                .collect_deliverable_into(pid, self.now, &mut inbox);
            for env in &inbox {
                self.metrics.record_delivery(pid, env.sent_at, self.now);
            }
            self.metrics
                .record_step(pid, self.last_scheduled[pid.index()], self.now);
            self.last_scheduled[pid.index()] = self.now;

            self.processes[pid.index()].on_step(self.now, &mut inbox, &mut outbox);
            self.quiescent[pid.index()] = self.processes[pid.index()].is_quiescent();

            self.metrics.record_sent(pid, outbox.len() as u64);
            for (to, payload) in outbox.drain() {
                if to.index() >= self.config.n {
                    return Err(SimError::UnknownProcess {
                        pid: to,
                        n: self.config.n,
                    });
                }
                outgoing.push((
                    Envelope {
                        from: pid,
                        to,
                        sent_at: self.now,
                        payload,
                    },
                    0,
                ));
            }
        }

        // Assign delays against one view snapshot taken after all local
        // steps of this tick: only `in_flight` could still change during the
        // sends below, and the batch's delay decisions deliberately all see
        // the pre-send count (documented on `SystemView::in_flight`).
        {
            let view = self.view();
            for (env, delay) in outgoing.iter_mut() {
                if self.statuses[env.to.index()].is_crashed() {
                    continue;
                }
                let chosen = delay_for(&env.meta(), &view);
                if chosen == 0 || (chosen > self.config.d && chosen != u64::MAX) {
                    return Err(SimError::DelayOutOfBounds {
                        from: env.from,
                        to: env.to,
                        delay: chosen,
                        d: self.config.d,
                    });
                }
                *delay = chosen;
            }
        }

        for (env, delay) in outgoing.drain(..) {
            // Messages to crashed destinations are dropped (they can never be
            // received) but they were already counted as sent above.
            if self.statuses[env.to.index()].is_crashed() {
                self.metrics.record_dropped(1);
                continue;
            }
            self.network.send(env, delay);
        }

        if self.system_quiescent() {
            self.metrics.record_quiescence(self.now);
        }
        self.metrics.elapsed_steps += 1;
        self.now.tick();

        // Drop any envelopes a process left unread so they don't outlive the
        // step inside the reused buffer.
        inbox.clear();
        self.inbox = inbox;
        self.outbox = outbox;
        self.outgoing = outgoing;
        Ok(())
    }

    /// Runs until the system is quiescent or the step limit is reached.
    pub fn run_with<A: Adversary>(&mut self, adversary: &mut A) -> SimResult<RunOutcome> {
        self.run_until(adversary, |_| false)
    }

    /// Runs until the system is quiescent, `stop` returns true, or the step
    /// limit is reached. The predicate is evaluated after every step.
    ///
    /// With [`SimConfig::idle_fast_forward`] enabled, whenever every alive
    /// process is quiescent and messages are still in flight the loop jumps
    /// the clock straight to the network's earliest delivery deadline instead
    /// of ticking through the idle window (during which every local step
    /// would be a receive-nothing/send-nothing no-op); the skipped steps are
    /// counted in [`Metrics::idle_steps_skipped`].
    pub fn run_until<A: Adversary>(
        &mut self,
        adversary: &mut A,
        mut stop: impl FnMut(&Self) -> bool,
    ) -> SimResult<RunOutcome> {
        loop {
            if self.system_quiescent() {
                self.metrics.record_quiescence(self.now);
                return Ok(RunOutcome {
                    reason: StopReason::Quiescent,
                    stopped_at: self.now,
                });
            }
            if stop(self) {
                return Ok(RunOutcome {
                    reason: StopReason::Predicate,
                    stopped_at: self.now,
                });
            }
            if self.config.idle_fast_forward {
                self.idle_fast_forward();
            }
            if self.now.as_u64() >= self.config.max_steps {
                return Err(SimError::StepLimitExceeded {
                    max_steps: self.config.max_steps,
                });
            }
            self.step_with(adversary)?;
        }
    }

    /// Jumps `now` to the network's earliest delivery deadline if every alive
    /// process is quiescent, at least one message is in flight, and that
    /// deadline is in the future. No-op otherwise.
    ///
    /// The jump is capped at [`SimConfig::max_steps`] so that a system whose
    /// only traffic is withheld forever (deadline `u64::MAX`) still
    /// terminates with [`SimError::StepLimitExceeded`] instead of warping the
    /// clock past the limit.
    fn idle_fast_forward(&mut self) {
        if self.network.is_empty() {
            return;
        }
        let all_quiet = self
            .statuses
            .iter()
            .zip(&self.quiescent)
            .all(|(s, q)| s.is_crashed() || *q);
        if !all_quiet {
            return;
        }
        let Some(deadline) = self.network.earliest_deliverable() else {
            return;
        };
        let target = deadline.as_u64().min(self.config.max_steps);
        let skipped = target.saturating_sub(self.now.as_u64());
        if skipped == 0 {
            return;
        }
        self.now = TimeStep(target);
        self.metrics.idle_steps_skipped += skipped;
    }

    /// Consumes the simulation and returns its parts: the process state
    /// machines (for post-hoc correctness checks) and the metrics.
    pub fn into_parts(self) -> (Vec<P>, Metrics) {
        (self.processes, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FairObliviousAdversary;

    /// A toy protocol: flood a single token once, then stay quiet. Used to
    /// exercise the engine itself.
    #[derive(Debug, Clone)]
    struct OneShotFlood {
        id: ProcessId,
        n: usize,
        sent: bool,
        received: Vec<ProcessId>,
    }

    impl OneShotFlood {
        fn new(id: ProcessId, n: usize) -> Self {
            OneShotFlood {
                id,
                n,
                sent: false,
                received: Vec::new(),
            }
        }
    }

    impl Process for OneShotFlood {
        type Message = ProcessId;

        fn on_step(
            &mut self,
            _now: TimeStep,
            inbox: &mut Vec<Envelope<Self::Message>>,
            out: &mut Outbox<Self::Message>,
        ) {
            for env in inbox.drain(..) {
                self.received.push(env.payload);
            }
            if !self.sent {
                self.sent = true;
                for q in ProcessId::all(self.n) {
                    if q != self.id {
                        out.send(q, self.id);
                    }
                }
            }
        }

        fn is_quiescent(&self) -> bool {
            self.sent
        }
    }

    fn flood_sim(n: usize, f: usize, d: u64, delta: u64) -> Simulation<OneShotFlood> {
        let cfg = SimConfig::new(n, f)
            .with_d(d)
            .with_delta(delta)
            .with_seed(11);
        let procs = ProcessId::all(n).map(|p| OneShotFlood::new(p, n)).collect();
        Simulation::new(cfg, procs).unwrap()
    }

    #[test]
    fn rejects_process_count_mismatch() {
        let cfg = SimConfig::new(3, 1);
        let procs = vec![OneShotFlood::new(ProcessId(0), 3)];
        assert!(matches!(
            Simulation::new(cfg, procs),
            Err(SimError::ProcessCountMismatch { .. })
        ));
    }

    #[test]
    fn flood_completes_and_counts_messages() {
        let n = 8;
        let mut sim = flood_sim(n, 0, 1, 1);
        let mut adv = FairObliviousAdversary::new(1, 1, 3);
        let outcome = sim.run_with(&mut adv).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        // n processes each send n-1 messages.
        assert_eq!(sim.metrics().messages_sent, (n * (n - 1)) as u64);
        // Every process received from every other.
        for pid in ProcessId::all(n) {
            assert_eq!(sim.process(pid).received.len(), n - 1);
        }
        assert!(sim.metrics().quiescence_time.is_some());
        assert!(sim.metrics().max_delivery_delay <= 1);
    }

    #[test]
    fn crash_budget_is_enforced() {
        let mut sim = flood_sim(4, 1, 1, 1);
        sim.crash(ProcessId(0)).unwrap();
        // Second crash exceeds f = 1.
        assert!(matches!(
            sim.crash(ProcessId(1)),
            Err(SimError::CrashBudgetExceeded { .. })
        ));
        // Crashing an already-crashed process is a no-op.
        sim.crash(ProcessId(0)).unwrap();
        assert_eq!(sim.metrics().crashes, 1);
    }

    #[test]
    fn crashed_processes_do_not_step_or_receive() {
        let n = 4;
        let mut sim = flood_sim(n, 1, 1, 1);
        sim.crash(ProcessId(3)).unwrap();
        let mut adv = FairObliviousAdversary::new(1, 1, 5);
        sim.run_with(&mut adv).unwrap();
        // The crashed process never stepped.
        assert_eq!(sim.metrics().steps_by[3], 0);
        assert_eq!(sim.metrics().sent_by[3], 0);
        // Messages addressed to it were dropped, not delivered.
        assert_eq!(sim.metrics().delivered_to[3], 0);
        assert!(sim.metrics().messages_dropped >= (n - 1) as u64);
    }

    #[test]
    fn manual_stepping_with_withheld_messages() {
        let n = 3;
        let mut sim = flood_sim(n, 0, 1, 1);
        // Schedule only process 0 and withhold everything it sends.
        sim.step_manual(&[ProcessId(0)], &[], |_| u64::MAX).unwrap();
        assert_eq!(sim.metrics().messages_sent, (n - 1) as u64);
        assert_eq!(sim.in_flight(), n - 1);
        assert!(!sim.system_quiescent());
        assert!(!sim.system_quiescent_ignoring_withheld(TimeStep(1_000_000)));
        // The other two processes have not stepped yet, so they are not quiescent.
        sim.step_manual(&[ProcessId(1), ProcessId(2)], &[], |_| u64::MAX)
            .unwrap();
        assert!(sim.system_quiescent_ignoring_withheld(TimeStep(1_000_000)));
        // But with the withheld messages still pending, plain quiescence is false.
        assert!(!sim.system_quiescent());
    }

    #[test]
    fn step_limit_is_reported() {
        // A protocol that never becomes quiescent: keep resending forever.
        #[derive(Debug, Clone)]
        struct Chatter {
            n: usize,
        }
        impl Process for Chatter {
            type Message = ();
            fn on_step(
                &mut self,
                _now: TimeStep,
                _inbox: &mut Vec<Envelope<()>>,
                out: &mut Outbox<()>,
            ) {
                out.send(ProcessId(0), ());
                let _ = self.n;
            }
            fn is_quiescent(&self) -> bool {
                false
            }
        }
        let cfg = SimConfig::new(2, 0).with_max_steps(50);
        let mut sim = Simulation::new(cfg, vec![Chatter { n: 2 }, Chatter { n: 2 }]).unwrap();
        let mut adv = FairObliviousAdversary::new(1, 1, 1);
        assert!(matches!(
            sim.run_with(&mut adv),
            Err(SimError::StepLimitExceeded { max_steps: 50 })
        ));
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let mut sim = flood_sim(6, 0, 2, 2);
        let mut adv = FairObliviousAdversary::new(2, 2, 9);
        let outcome = sim
            .run_until(&mut adv, |s| s.metrics().messages_sent >= 5)
            .unwrap();
        assert_eq!(outcome.reason, StopReason::Predicate);
        assert!(sim.metrics().messages_sent >= 5);
    }

    #[test]
    fn actual_bounds_are_recorded() {
        let mut sim = flood_sim(6, 0, 3, 2);
        let mut adv = FairObliviousAdversary::new(3, 2, 17);
        sim.run_with(&mut adv).unwrap();
        assert!(sim.metrics().max_delivery_delay <= 3);
        assert!(sim.metrics().max_schedule_gap <= 2);
    }

    #[test]
    fn zero_delay_is_rejected() {
        let mut sim = flood_sim(3, 0, 2, 1);
        let err = sim.step_manual(&[ProcessId(0)], &[], |_| 0).unwrap_err();
        assert!(matches!(
            err,
            SimError::DelayOutOfBounds { delay: 0, d: 2, .. }
        ));
    }

    #[test]
    fn delay_above_d_is_rejected() {
        let mut sim = flood_sim(3, 0, 2, 1);
        let err = sim.step_manual(&[ProcessId(0)], &[], |_| 5).unwrap_err();
        assert!(matches!(
            err,
            SimError::DelayOutOfBounds { delay: 5, d: 2, .. }
        ));
        // Nothing entered the network: the step failed before sending.
        assert_eq!(sim.in_flight(), 0);
    }

    #[test]
    fn adversary_delays_are_validated_too() {
        struct RogueAdversary;
        impl Adversary for RogueAdversary {
            fn plan_step(&mut self, view: &SystemView<'_>) -> StepPlan {
                StepPlan::schedule_only(view.alive().collect())
            }
            fn message_delay(&mut self, _meta: &EnvelopeMeta, _view: &SystemView<'_>) -> u64 {
                7 // exceeds every flood_sim d below
            }
        }
        let mut sim = flood_sim(3, 0, 2, 1);
        assert!(matches!(
            sim.step_with(&mut RogueAdversary),
            Err(SimError::DelayOutOfBounds { delay: 7, d: 2, .. })
        ));
    }

    #[test]
    fn withheld_marker_passes_validation() {
        let mut sim = flood_sim(3, 0, 1, 1);
        sim.step_manual(&[ProcessId(0)], &[], |_| u64::MAX).unwrap();
        assert_eq!(sim.in_flight(), 2);
    }

    #[test]
    fn idle_fast_forward_jumps_to_next_deadline() {
        // One-shot flood with a large delivery bound: after the first step
        // everyone is quiescent and all traffic is in flight, so the idle
        // window until the earliest deadline can be skipped wholesale.
        let n = 8;
        let d = 64;
        let cfg = SimConfig::new(n, 0)
            .with_d(d)
            .with_delta(1)
            .with_seed(11)
            .with_idle_fast_forward(true);
        let procs = ProcessId::all(n).map(|p| OneShotFlood::new(p, n)).collect();
        let mut sim: Simulation<OneShotFlood> = Simulation::new(cfg, procs).unwrap();
        let mut adv = FairObliviousAdversary::new(d, 1, 11);
        let outcome = sim.run_with(&mut adv).unwrap();
        assert_eq!(outcome.reason, StopReason::Quiescent);
        assert_eq!(sim.metrics().messages_sent, (n * (n - 1)) as u64);
        for pid in ProcessId::all(n) {
            assert_eq!(sim.process(pid).received.len(), n - 1);
        }
        assert!(
            sim.metrics().idle_steps_skipped > 0,
            "a d = 64 flood must contain skippable idle windows"
        );
        // Wall-clock time (executed + skipped) adds up to the stop time.
        assert_eq!(
            sim.metrics().elapsed_steps + sim.metrics().idle_steps_skipped,
            outcome.stopped_at.as_u64()
        );
    }

    #[test]
    fn idle_fast_forward_preserves_quiescence_time_when_delta_is_one() {
        // With δ = 1 every process is scheduled every step, so deliveries
        // happen exactly at their deadlines whether or not the idle windows
        // in between are fast-forwarded: the quiescence time must agree.
        let n = 6;
        let d = 32;
        let run = |fast_forward: bool| {
            let cfg = SimConfig::new(n, 0)
                .with_d(d)
                .with_delta(1)
                .with_seed(23)
                .with_idle_fast_forward(fast_forward);
            let procs = ProcessId::all(n).map(|p| OneShotFlood::new(p, n)).collect();
            let mut sim: Simulation<OneShotFlood> = Simulation::new(cfg, procs).unwrap();
            let mut adv = FairObliviousAdversary::new(d, 1, 23);
            let outcome = sim.run_with(&mut adv).unwrap();
            (outcome, sim.metrics().clone())
        };
        let (slow_outcome, slow) = run(false);
        let (fast_outcome, fast) = run(true);
        assert_eq!(slow_outcome.stopped_at, fast_outcome.stopped_at);
        assert_eq!(slow.quiescence_time, fast.quiescence_time);
        assert_eq!(slow.messages_sent, fast.messages_sent);
        assert_eq!(slow.messages_delivered, fast.messages_delivered);
        assert_eq!(slow.idle_steps_skipped, 0);
        assert!(fast.idle_steps_skipped > 0);
        assert!(fast.elapsed_steps < slow.elapsed_steps);
    }

    #[test]
    fn idle_fast_forward_still_hits_step_limit_on_withheld_traffic() {
        // Every message withheld forever: the earliest deadline saturates, so
        // fast-forward must cap the jump at max_steps and report the limit.
        struct WithholdingAdversary;
        impl Adversary for WithholdingAdversary {
            fn plan_step(&mut self, view: &SystemView<'_>) -> StepPlan {
                StepPlan::schedule_only(view.alive().collect())
            }
            fn message_delay(&mut self, _meta: &EnvelopeMeta, _view: &SystemView<'_>) -> u64 {
                u64::MAX
            }
        }
        let cfg = SimConfig::new(3, 0)
            .with_max_steps(100)
            .with_idle_fast_forward(true);
        let procs = ProcessId::all(3).map(|p| OneShotFlood::new(p, 3)).collect();
        let mut sim: Simulation<OneShotFlood> = Simulation::new(cfg, procs).unwrap();
        assert!(matches!(
            sim.run_with(&mut WithholdingAdversary),
            Err(SimError::StepLimitExceeded { max_steps: 100 })
        ));
    }

    #[test]
    fn pending_messages_can_be_inspected() {
        let mut sim = flood_sim(3, 0, 5, 1);
        sim.step_manual(&[ProcessId(0)], &[], |_| 5).unwrap();
        let pending = sim.pending_messages_for(ProcessId(1));
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].from, ProcessId(0));
    }

    #[test]
    fn into_parts_returns_final_states() {
        let mut sim = flood_sim(3, 0, 1, 1);
        let mut adv = FairObliviousAdversary::new(1, 1, 2);
        sim.run_with(&mut adv).unwrap();
        let (procs, metrics) = sim.into_parts();
        assert_eq!(procs.len(), 3);
        assert!(metrics.quiescence_time.is_some());
    }
}
