//! Error types for configuration and simulation control.

use std::fmt;

use crate::process::ProcessId;

/// Result alias used throughout the crate.
pub type SimResult<T> = Result<T, SimError>;

/// Errors raised when constructing or driving a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration is internally inconsistent (e.g. `f >= n`).
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A process identifier outside `0..n` was used.
    UnknownProcess {
        /// The offending identifier.
        pid: ProcessId,
        /// The system size.
        n: usize,
    },
    /// More crashes were requested than the failure budget `f` allows.
    CrashBudgetExceeded {
        /// The configured failure budget.
        budget: usize,
        /// The number of crashes that would result.
        requested: usize,
    },
    /// The number of processes handed to the simulation does not match `n`.
    ProcessCountMismatch {
        /// The configured system size.
        expected: usize,
        /// The number of process state machines supplied.
        actual: usize,
    },
    /// The run loop hit its step limit before every process became quiescent.
    StepLimitExceeded {
        /// The configured maximum number of time steps.
        max_steps: u64,
    },
    /// An adversary assigned a delivery delay outside `1..=d` (and different
    /// from `u64::MAX`, which is the explicit "withheld forever" marker) to a
    /// message. Such a delay would silently leave the `(d, δ)`-bounded
    /// execution model the paper's theorems are stated for.
    DelayOutOfBounds {
        /// The sender of the offending message.
        from: ProcessId,
        /// The recipient of the offending message.
        to: ProcessId,
        /// The delay the adversary assigned.
        delay: u64,
        /// The configured delivery bound `d`.
        d: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::UnknownProcess { pid, n } => {
                write!(f, "unknown process {pid} in a system of {n} processes")
            }
            SimError::CrashBudgetExceeded { budget, requested } => write!(
                f,
                "crash budget exceeded: requested {requested} total crashes but f = {budget}"
            ),
            SimError::ProcessCountMismatch { expected, actual } => write!(
                f,
                "process count mismatch: configuration says n = {expected} but {actual} processes were supplied"
            ),
            SimError::StepLimitExceeded { max_steps } => {
                write!(f, "simulation exceeded the step limit of {max_steps}")
            }
            SimError::DelayOutOfBounds { from, to, delay, d } => write!(
                f,
                "adversary assigned delay {delay} to a message {from} -> {to}, \
                 outside 1..={d} (use u64::MAX to withhold a message forever)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::InvalidConfig {
            reason: "f must be < n".into(),
        };
        assert!(e.to_string().contains("f must be < n"));

        let e = SimError::UnknownProcess {
            pid: ProcessId(9),
            n: 4,
        };
        assert!(e.to_string().contains("p9"));
        assert!(e.to_string().contains('4'));

        let e = SimError::CrashBudgetExceeded {
            budget: 2,
            requested: 3,
        };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));

        let e = SimError::ProcessCountMismatch {
            expected: 8,
            actual: 7,
        };
        assert!(e.to_string().contains('8'));

        let e = SimError::StepLimitExceeded { max_steps: 100 };
        assert!(e.to_string().contains("100"));

        let e = SimError::DelayOutOfBounds {
            from: ProcessId(1),
            to: ProcessId(2),
            delay: 9,
            d: 4,
        };
        assert!(e.to_string().contains("p1"));
        assert!(e.to_string().contains("p2"));
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&SimError::StepLimitExceeded { max_steps: 1 });
    }
}
