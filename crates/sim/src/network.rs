//! The in-flight message buffer.
//!
//! Messages are never lost or corrupted (paper, Section 1): once sent, a
//! message stays in the network until its recipient is scheduled at or after
//! the message's delivery deadline, at which point it is handed to the
//! recipient's local step. Messages addressed to crashed processes are
//! discarded when the crash is observed.

use std::collections::VecDeque;

use crate::message::Envelope;
use crate::process::ProcessId;
use crate::time::TimeStep;

/// A message waiting in the network together with the earliest time at which
/// it may be delivered.
#[derive(Debug, Clone)]
struct InFlight<M> {
    envelope: Envelope<M>,
    /// The message becomes deliverable at any scheduled step of the recipient
    /// occurring at time `>= deliverable_at`.
    deliverable_at: TimeStep,
}

/// The network: a per-destination queue of in-flight messages.
#[derive(Debug, Clone)]
pub struct Network<M> {
    queues: Vec<VecDeque<InFlight<M>>>,
    in_flight: usize,
}

impl<M> Network<M> {
    /// Creates an empty network for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        Network {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            in_flight: 0,
        }
    }

    /// Number of processes the network routes between.
    pub fn n(&self) -> usize {
        self.queues.len()
    }

    /// Accepts a message sent at `envelope.sent_at` with delivery delay
    /// `delay` (so it becomes deliverable at `sent_at + delay`).
    ///
    /// A `delay` of `u64::MAX` models a message the adversary withholds for
    /// the remainder of the execution (used by the adaptive lower-bound
    /// adversary); such messages still count as *sent* for message-complexity
    /// accounting, which is done by the caller.
    pub fn send(&mut self, envelope: Envelope<M>, delay: u64) {
        let deliverable_at = envelope.sent_at.after(delay);
        let to = envelope.to.index();
        debug_assert!(to < self.queues.len(), "destination out of range");
        self.queues[to].push_back(InFlight {
            envelope,
            deliverable_at,
        });
        self.in_flight += 1;
    }

    /// Removes and returns every message addressed to `to` whose delivery
    /// deadline has been reached at time `now`.
    pub fn collect_deliverable(&mut self, to: ProcessId, now: TimeStep) -> Vec<Envelope<M>> {
        let queue = &mut self.queues[to.index()];
        let mut delivered = Vec::new();
        let mut remaining = VecDeque::with_capacity(queue.len());
        while let Some(m) = queue.pop_front() {
            if m.deliverable_at <= now {
                delivered.push(m.envelope);
            } else {
                remaining.push_back(m);
            }
        }
        *queue = remaining;
        self.in_flight -= delivered.len();
        delivered
    }

    /// Discards every message addressed to `to` (used when `to` crashes).
    /// Returns the number of messages dropped.
    pub fn drop_for(&mut self, to: ProcessId) -> usize {
        let queue = &mut self.queues[to.index()];
        let dropped = queue.len();
        queue.clear();
        self.in_flight -= dropped;
        dropped
    }

    /// Total number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Number of messages currently queued for `to`.
    pub fn pending_for(&self, to: ProcessId) -> usize {
        self.queues[to.index()].len()
    }

    /// Earliest time at which any message queued for `to` becomes
    /// deliverable, or `None` if the queue is empty.
    pub fn earliest_deliverable_for(&self, to: ProcessId) -> Option<TimeStep> {
        self.queues[to.index()]
            .iter()
            .map(|m| m.deliverable_at)
            .min()
    }

    /// True if no message is in flight to any destination.
    pub fn is_empty(&self) -> bool {
        self.in_flight == 0
    }

    /// Iterates over the messages currently queued for `to` (regardless of
    /// delivery deadline), without removing them.
    pub fn iter_for(&self, to: ProcessId) -> impl Iterator<Item = &Envelope<M>> {
        self.queues[to.index()].iter().map(|m| &m.envelope)
    }

    /// Clones every message currently queued for `to`.
    pub fn clone_pending_for(&self, to: ProcessId) -> Vec<Envelope<M>>
    where
        M: Clone,
    {
        self.iter_for(to).cloned().collect()
    }

    /// True if every in-flight message has a delivery deadline of
    /// `u64::MAX`-like magnitude, i.e. has been withheld "forever" relative
    /// to `horizon`. Used by drivers that want to treat permanently withheld
    /// messages as drained.
    pub fn all_beyond(&self, horizon: TimeStep) -> bool {
        self.queues
            .iter()
            .flatten()
            .all(|m| m.deliverable_at > horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: usize, to: usize, at: u64, payload: u32) -> Envelope<u32> {
        Envelope {
            from: ProcessId(from),
            to: ProcessId(to),
            sent_at: TimeStep(at),
            payload,
        }
    }

    #[test]
    fn delivery_respects_deadline() {
        let mut net: Network<u32> = Network::new(3);
        net.send(env(0, 1, 0, 7), 2);
        assert_eq!(net.in_flight(), 1);
        // Not deliverable before t2.
        assert!(net
            .collect_deliverable(ProcessId(1), TimeStep(1))
            .is_empty());
        assert_eq!(net.in_flight(), 1);
        let got = net.collect_deliverable(ProcessId(1), TimeStep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 7);
        assert!(net.is_empty());
    }

    #[test]
    fn delivery_is_per_destination() {
        let mut net: Network<u32> = Network::new(3);
        net.send(env(0, 1, 0, 1), 1);
        net.send(env(0, 2, 0, 2), 1);
        let got = net.collect_deliverable(ProcessId(1), TimeStep(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 1);
        assert_eq!(net.pending_for(ProcessId(2)), 1);
    }

    #[test]
    fn withheld_messages_stay_in_flight() {
        let mut net: Network<u32> = Network::new(2);
        net.send(env(0, 1, 0, 9), u64::MAX);
        assert!(net
            .collect_deliverable(ProcessId(1), TimeStep(1_000_000))
            .is_empty());
        assert_eq!(net.in_flight(), 1);
        assert!(net.all_beyond(TimeStep(1_000_000)));
        assert!(!net.is_empty());
    }

    #[test]
    fn drop_for_discards_queue() {
        let mut net: Network<u32> = Network::new(2);
        net.send(env(0, 1, 0, 1), 1);
        net.send(env(0, 1, 0, 2), 1);
        assert_eq!(net.drop_for(ProcessId(1)), 2);
        assert!(net.is_empty());
        assert_eq!(net.drop_for(ProcessId(1)), 0);
    }

    #[test]
    fn earliest_deliverable_reports_minimum() {
        let mut net: Network<u32> = Network::new(2);
        assert_eq!(net.earliest_deliverable_for(ProcessId(1)), None);
        net.send(env(0, 1, 0, 1), 5);
        net.send(env(0, 1, 2, 2), 1);
        assert_eq!(
            net.earliest_deliverable_for(ProcessId(1)),
            Some(TimeStep(3))
        );
    }

    #[test]
    fn mixed_deadlines_partial_delivery() {
        let mut net: Network<u32> = Network::new(2);
        net.send(env(0, 1, 0, 1), 1);
        net.send(env(0, 1, 0, 2), 10);
        let got = net.collect_deliverable(ProcessId(1), TimeStep(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 1);
        assert_eq!(net.pending_for(ProcessId(1)), 1);
        let got = net.collect_deliverable(ProcessId(1), TimeStep(10));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 2);
    }
}
