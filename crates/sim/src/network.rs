//! The in-flight message buffer.
//!
//! Messages are never lost or corrupted (paper, Section 1): once sent, a
//! message stays in the network until its recipient is scheduled at or after
//! the message's delivery deadline, at which point it is handed to the
//! recipient's local step. Messages addressed to crashed processes are
//! discarded when the crash is observed.
//!
//! # Representation
//!
//! Each destination owns a [`BinaryHeap`] of in-flight messages keyed by
//! `(deliverable_at, seq)`, where `seq` is a network-wide send sequence
//! number. The heap top is therefore always the earliest-deadline message, so
//!
//! * [`Network::earliest_deliverable_for`] is O(1) (a peek), and
//! * [`Network::collect_deliverable`] is O(delivered · log k) and returns
//!   *immediately* — moving nothing — when the earliest deadline is still in
//!   the future.
//!
//! Delivered batches are handed out in **send order** (ascending `seq`), which
//! is exactly the order the historical `VecDeque`-scan implementation
//! produced, so executions are bit-for-bit reproducible across the two
//! representations (see `tests/network_differential.rs`).
//!
//! # Sharding
//!
//! The destination queues are additionally grouped into *shards* of
//! [`SHARD_SIZE`] consecutive destinations. Each shard tracks its own
//! in-flight count and a lazily recomputed cache of the earliest delivery
//! deadline over its member queues, so the whole-network queries —
//! [`Network::earliest_deliverable`] (the idle fast-forward target) and
//! [`Network::all_beyond`] (quiescence under withheld messages) — cost
//! O(shards) plus one O([`SHARD_SIZE`]) rescan per shard that changed since
//! the last query, instead of peeking all `n` queues every time. At
//! `n = 65 536` that turns a 65 536-peek scan into at most 1 024 cache
//! reads. Shards are merged in ascending shard order, which is
//! deterministic and — since `min` is order-insensitive — yields exactly
//! the value the flat scan produced, so executions stay bit-for-bit
//! identical (pinned by `tests/network_differential.rs` and the golden
//! seeds in `tests/tests/seed_equivalence.rs`).

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::message::Envelope;
use crate::process::ProcessId;
use crate::time::TimeStep;

/// A message waiting in the network together with the earliest time at which
/// it may be delivered and its network-wide send sequence number.
#[derive(Debug, Clone)]
struct InFlight<M> {
    envelope: Envelope<M>,
    /// The message becomes deliverable at any scheduled step of the recipient
    /// occurring at time `>= deliverable_at`.
    deliverable_at: TimeStep,
    /// Position in the global send order; unique per network, used to break
    /// deadline ties FIFO and to restore send order within a delivered batch.
    seq: u64,
}

// The heap must order solely by (deliverable_at, seq) — payloads have no
// ordering — and `BinaryHeap` is a max-heap, so the comparison is reversed to
// put the earliest deadline on top. `seq` is unique, which makes the order
// total and the `PartialEq` below consistent with it.
impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<M> Eq for InFlight<M> {}

impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .deliverable_at
            .cmp(&self.deliverable_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Destinations per scheduler shard: `1 << SHARD_SHIFT`.
const SHARD_SHIFT: usize = 6;

/// Number of consecutive destinations grouped under one shard (64): small
/// enough that a stale shard's rescan is one cache line of heap tops, large
/// enough that the shard directory at `n = 65 536` is only 1 024 entries.
pub const SHARD_SIZE: usize = 1 << SHARD_SHIFT;

/// Per-shard scheduling state: the in-flight count and the cached earliest
/// delivery deadline over the shard's member queues.
///
/// The cache uses interior mutability (`Cell`) because the whole-network
/// queries are `&self`; a shard is marked stale whenever one of its queues
/// loses messages (delivery or crash-drop) and rescanned on the next query.
/// Sends keep the cache exact directly (the minimum only decreases).
#[derive(Debug, Clone)]
struct Shard {
    in_flight: usize,
    earliest: Cell<Option<TimeStep>>,
    stale: Cell<bool>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            in_flight: 0,
            earliest: Cell::new(None),
            stale: Cell::new(false),
        }
    }
}

/// The network: a per-destination deadline-indexed queue of in-flight
/// messages, grouped into shards of [`SHARD_SIZE`] destinations for the
/// whole-network queries (see the module docs).
#[derive(Debug, Clone)]
pub struct Network<M> {
    queues: Vec<BinaryHeap<InFlight<M>>>,
    shards: Vec<Shard>,
    in_flight: usize,
    next_seq: u64,
    /// Scratch space for popped messages while a delivered batch is being
    /// restored to send order; kept here so steady-state collection does not
    /// allocate.
    scratch: Vec<InFlight<M>>,
}

impl<M> Network<M> {
    /// Creates an empty network for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        Network {
            queues: (0..n).map(|_| BinaryHeap::new()).collect(),
            shards: (0..n.div_ceil(SHARD_SIZE)).map(|_| Shard::new()).collect(),
            in_flight: 0,
            next_seq: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of processes the network routes between.
    pub fn n(&self) -> usize {
        self.queues.len()
    }

    /// Accepts a message sent at `envelope.sent_at` with delivery delay
    /// `delay` (so it becomes deliverable at `sent_at + delay`).
    ///
    /// A `delay` of `u64::MAX` models a message the adversary withholds for
    /// the remainder of the execution (used by the adaptive lower-bound
    /// adversary); such messages still count as *sent* for message-complexity
    /// accounting, which is done by the caller.
    pub fn send(&mut self, envelope: Envelope<M>, delay: u64) {
        let deliverable_at = envelope.sent_at.after(delay);
        let to = envelope.to.index();
        debug_assert!(to < self.queues.len(), "destination out of range");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queues[to].push(InFlight {
            envelope,
            deliverable_at,
            seq,
        });
        self.in_flight += 1;
        let shard = &mut self.shards[to >> SHARD_SHIFT];
        shard.in_flight += 1;
        if !shard.stale.get() {
            // The cache is exact; a send can only lower the minimum.
            let earliest = shard
                .earliest
                .get()
                .map_or(deliverable_at, |e| e.min(deliverable_at));
            shard.earliest.set(Some(earliest));
        }
    }

    /// Removes and returns every message addressed to `to` whose delivery
    /// deadline has been reached at time `now`, in send order.
    ///
    /// Convenience wrapper around [`Self::collect_deliverable_into`] for
    /// callers that do not reuse a buffer.
    pub fn collect_deliverable(&mut self, to: ProcessId, now: TimeStep) -> Vec<Envelope<M>> {
        let mut delivered = Vec::new();
        self.collect_deliverable_into(to, now, &mut delivered);
        delivered
    }

    /// Appends every message addressed to `to` whose delivery deadline has
    /// been reached at time `now` onto `out`, in send order.
    ///
    /// When the earliest deadline for `to` is still in the future this
    /// returns without moving (or allocating) anything.
    pub fn collect_deliverable_into(
        &mut self,
        to: ProcessId,
        now: TimeStep,
        out: &mut Vec<Envelope<M>>,
    ) {
        let queue = &mut self.queues[to.index()];
        match queue.peek() {
            Some(m) if m.deliverable_at <= now => {}
            _ => return,
        }
        debug_assert!(self.scratch.is_empty());
        while queue.peek().is_some_and(|m| m.deliverable_at <= now) {
            let Some(m) = queue.pop() else { break };
            self.scratch.push(m);
        }
        self.in_flight -= self.scratch.len();
        let shard = &mut self.shards[to.index() >> SHARD_SHIFT];
        shard.in_flight -= self.scratch.len();
        shard.stale.set(true);
        // Heap order is (deadline, seq); the historical contract is send
        // order across the whole batch, i.e. ascending seq.
        self.scratch.sort_unstable_by_key(|m| m.seq);
        out.extend(self.scratch.drain(..).map(|m| m.envelope));
    }

    /// Discards every message addressed to `to` (used when `to` crashes).
    /// Returns the number of messages dropped.
    pub fn drop_for(&mut self, to: ProcessId) -> usize {
        let queue = &mut self.queues[to.index()];
        let dropped = queue.len();
        queue.clear();
        self.in_flight -= dropped;
        if dropped > 0 {
            let shard = &mut self.shards[to.index() >> SHARD_SHIFT];
            shard.in_flight -= dropped;
            shard.stale.set(true);
        }
        dropped
    }

    /// Total number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Number of messages currently queued for `to`.
    pub fn pending_for(&self, to: ProcessId) -> usize {
        self.queues[to.index()].len()
    }

    /// Earliest time at which any message queued for `to` becomes
    /// deliverable, or `None` if the queue is empty. O(1).
    pub fn earliest_deliverable_for(&self, to: ProcessId) -> Option<TimeStep> {
        self.queues[to.index()].peek().map(|m| m.deliverable_at)
    }

    /// The cached earliest deadline of shard `s`, rescanning its member
    /// queues first if the shard changed since the last query.
    fn shard_earliest(&self, s: usize) -> Option<TimeStep> {
        let shard = &self.shards[s];
        if shard.in_flight == 0 {
            shard.earliest.set(None);
            shard.stale.set(false);
            return None;
        }
        if shard.stale.get() {
            let lo = s << SHARD_SHIFT;
            let hi = ((s + 1) << SHARD_SHIFT).min(self.queues.len());
            let earliest = self.queues[lo..hi]
                .iter()
                .filter_map(|q| q.peek().map(|m| m.deliverable_at))
                .min();
            shard.earliest.set(earliest);
            shard.stale.set(false);
        }
        shard.earliest.get()
    }

    /// Earliest time at which any in-flight message (to any destination)
    /// becomes deliverable, or `None` if the network is empty. Merges the
    /// per-shard cached deadlines in ascending shard order: O(shards) cache
    /// reads plus one member rescan per shard that changed since the last
    /// query (`min` is order-insensitive, so the result is exactly what the
    /// historical flat scan over all `n` queues produced).
    ///
    /// This is what the scheduler's idle fast-forward jumps to.
    pub fn earliest_deliverable(&self) -> Option<TimeStep> {
        (0..self.shards.len())
            .filter_map(|s| self.shard_earliest(s))
            .min()
    }

    /// True if no message is in flight to any destination.
    pub fn is_empty(&self) -> bool {
        self.in_flight == 0
    }

    /// Iterates over the messages currently queued for `to` (regardless of
    /// delivery deadline), without removing them. Iteration order is
    /// unspecified; use [`Self::clone_pending_for`] for send order.
    pub fn iter_for(&self, to: ProcessId) -> impl Iterator<Item = &Envelope<M>> {
        self.queues[to.index()].iter().map(|m| &m.envelope)
    }

    /// Clones every message currently queued for `to`, in send order.
    pub fn clone_pending_for(&self, to: ProcessId) -> Vec<Envelope<M>>
    where
        M: Clone,
    {
        let mut pending: Vec<(u64, &Envelope<M>)> = self.queues[to.index()]
            .iter()
            .map(|m| (m.seq, &m.envelope))
            .collect();
        pending.sort_unstable_by_key(|(seq, _)| *seq);
        pending.into_iter().map(|(_, env)| env.clone()).collect()
    }

    /// True if every in-flight message has a delivery deadline of
    /// `u64::MAX`-like magnitude, i.e. has been withheld "forever" relative
    /// to `horizon`. Used by drivers that want to treat permanently withheld
    /// messages as drained. O(shards) via the per-shard deadline caches:
    /// only a shard's earliest deadline needs inspecting.
    pub fn all_beyond(&self, horizon: TimeStep) -> bool {
        (0..self.shards.len()).all(|s| self.shard_earliest(s).is_none_or(|e| e > horizon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: usize, to: usize, at: u64, payload: u32) -> Envelope<u32> {
        Envelope {
            from: ProcessId(from),
            to: ProcessId(to),
            sent_at: TimeStep(at),
            payload,
        }
    }

    #[test]
    fn delivery_respects_deadline() {
        let mut net: Network<u32> = Network::new(3);
        net.send(env(0, 1, 0, 7), 2);
        assert_eq!(net.in_flight(), 1);
        // Not deliverable before t2.
        assert!(net
            .collect_deliverable(ProcessId(1), TimeStep(1))
            .is_empty());
        assert_eq!(net.in_flight(), 1);
        let got = net.collect_deliverable(ProcessId(1), TimeStep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 7);
        assert!(net.is_empty());
    }

    #[test]
    fn delivery_is_per_destination() {
        let mut net: Network<u32> = Network::new(3);
        net.send(env(0, 1, 0, 1), 1);
        net.send(env(0, 2, 0, 2), 1);
        let got = net.collect_deliverable(ProcessId(1), TimeStep(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 1);
        assert_eq!(net.pending_for(ProcessId(2)), 1);
    }

    #[test]
    fn withheld_messages_stay_in_flight() {
        let mut net: Network<u32> = Network::new(2);
        net.send(env(0, 1, 0, 9), u64::MAX);
        assert!(net
            .collect_deliverable(ProcessId(1), TimeStep(1_000_000))
            .is_empty());
        assert_eq!(net.in_flight(), 1);
        assert!(net.all_beyond(TimeStep(1_000_000)));
        assert!(!net.is_empty());
    }

    #[test]
    fn drop_for_discards_queue() {
        let mut net: Network<u32> = Network::new(2);
        net.send(env(0, 1, 0, 1), 1);
        net.send(env(0, 1, 0, 2), 1);
        assert_eq!(net.drop_for(ProcessId(1)), 2);
        assert!(net.is_empty());
        assert_eq!(net.drop_for(ProcessId(1)), 0);
    }

    #[test]
    fn earliest_deliverable_reports_minimum() {
        let mut net: Network<u32> = Network::new(2);
        assert_eq!(net.earliest_deliverable_for(ProcessId(1)), None);
        assert_eq!(net.earliest_deliverable(), None);
        net.send(env(0, 1, 0, 1), 5);
        net.send(env(0, 1, 2, 2), 1);
        assert_eq!(
            net.earliest_deliverable_for(ProcessId(1)),
            Some(TimeStep(3))
        );
        net.send(env(1, 0, 0, 3), 2);
        assert_eq!(net.earliest_deliverable(), Some(TimeStep(2)));
    }

    #[test]
    fn mixed_deadlines_partial_delivery() {
        let mut net: Network<u32> = Network::new(2);
        net.send(env(0, 1, 0, 1), 1);
        net.send(env(0, 1, 0, 2), 10);
        let got = net.collect_deliverable(ProcessId(1), TimeStep(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 1);
        assert_eq!(net.pending_for(ProcessId(1)), 1);
        let got = net.collect_deliverable(ProcessId(1), TimeStep(10));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 2);
    }

    #[test]
    fn batches_are_delivered_in_send_order() {
        // Send order 10, 20, 30 with deadlines 5, 3, 4: the whole batch is
        // due at t5 and must come out in send order, not deadline order.
        let mut net: Network<u32> = Network::new(2);
        net.send(env(0, 1, 0, 10), 5);
        net.send(env(0, 1, 0, 20), 3);
        net.send(env(0, 1, 0, 30), 4);
        let got = net.collect_deliverable(ProcessId(1), TimeStep(5));
        let payloads: Vec<u32> = got.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![10, 20, 30]);
    }

    #[test]
    fn clone_pending_preserves_send_order() {
        let mut net: Network<u32> = Network::new(2);
        net.send(env(0, 1, 0, 10), 9);
        net.send(env(0, 1, 0, 20), 2);
        net.send(env(0, 1, 0, 30), 5);
        let cloned = net.clone_pending_for(ProcessId(1));
        let payloads: Vec<u32> = cloned.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![10, 20, 30]);
        // Cloning does not disturb the queue.
        assert_eq!(net.pending_for(ProcessId(1)), 3);
    }

    #[test]
    fn future_deadline_collection_moves_nothing() {
        // Regression for the historical implementation, which popped and
        // rebuilt the whole queue even when nothing was deliverable: with the
        // earliest deadline in the future, collection must move no envelopes
        // and leave every observable unchanged.
        let mut net: Network<u32> = Network::new(2);
        net.send(env(0, 1, 0, 1), 7);
        net.send(env(0, 1, 0, 2), 7);
        net.send(env(0, 1, 0, 3), 7);
        let mut out = Vec::new();
        for now in 0..7 {
            net.collect_deliverable_into(ProcessId(1), TimeStep(now), &mut out);
            assert!(out.is_empty(), "nothing deliverable before t7");
            assert_eq!(net.in_flight(), 3);
            assert_eq!(net.pending_for(ProcessId(1)), 3);
            assert_eq!(
                net.earliest_deliverable_for(ProcessId(1)),
                Some(TimeStep(7))
            );
        }
        // The untouched queue still delivers the full batch in send order.
        net.collect_deliverable_into(ProcessId(1), TimeStep(8), &mut out);
        let payloads: Vec<u32> = out.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![1, 2, 3]);
    }

    #[test]
    fn shard_caches_track_sends_collections_and_drops() {
        // Destinations straddling a shard boundary, so the global queries
        // merge more than one shard's cache.
        let n = SHARD_SIZE * 2 + 3;
        let mut net: Network<u32> = Network::new(n);
        let near = ProcessId(1); // shard 0
        let far = ProcessId(SHARD_SIZE + 1); // shard 1
        let edge = ProcessId(2 * SHARD_SIZE); // shard 2 (partial)
        net.send(env(0, near.index(), 0, 1), 9);
        net.send(env(0, far.index(), 0, 2), 3);
        net.send(env(0, edge.index(), 0, 3), 5);
        assert_eq!(net.earliest_deliverable(), Some(TimeStep(3)));
        // Delivering the earliest message must advance the merged minimum
        // (the shard cache is stale after the pop and gets rescanned).
        assert_eq!(net.collect_deliverable(far, TimeStep(3)).len(), 1);
        assert_eq!(net.earliest_deliverable(), Some(TimeStep(5)));
        assert!(net.all_beyond(TimeStep(4)));
        assert!(!net.all_beyond(TimeStep(5)));
        // A crash-drop empties its shard; the remaining message wins.
        assert_eq!(net.drop_for(edge), 1);
        assert_eq!(net.earliest_deliverable(), Some(TimeStep(9)));
        assert_eq!(net.drop_for(near), 1);
        assert_eq!(net.earliest_deliverable(), None);
        assert!(net.is_empty());
        // A send after the caches went empty repopulates them exactly.
        net.send(env(0, far.index(), 10, 4), 2);
        assert_eq!(net.earliest_deliverable(), Some(TimeStep(12)));
    }

    #[test]
    fn collect_into_appends_without_clearing() {
        let mut net: Network<u32> = Network::new(2);
        net.send(env(0, 1, 0, 5), 1);
        let mut out = vec![env(1, 0, 0, 99)];
        net.collect_deliverable_into(ProcessId(1), TimeStep(1), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, 99);
        assert_eq!(out[1].payload, 5);
    }
}
