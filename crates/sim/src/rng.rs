//! Deterministic random-number plumbing.
//!
//! Every source of randomness in an execution — the adversary's scheduling
//! and delay choices, and each process's protocol-level coin flips — is
//! derived from the single [`crate::SimConfig::seed`] through the helpers in
//! this module, so an execution is reproducible from `(config, protocol)`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::process::ProcessId;

/// Domain-separation tags for the different consumers of randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RngStream {
    /// The adversary's schedule / crash / delay decisions.
    Adversary,
    /// The protocol state machine of one process.
    Process(ProcessId),
    /// Auxiliary randomness used by experiment drivers (e.g. rumor payloads).
    Harness,
}

impl RngStream {
    fn tag(self) -> u64 {
        match self {
            RngStream::Adversary => 0x00AD_0000_0000_0000,
            RngStream::Process(pid) => 0x0090_0000_0000_0000 ^ (pid.index() as u64),
            RngStream::Harness => 0x00AA_0000_0000_0000,
        }
    }
}

/// Derives a seed for a sub-stream from the execution's master seed.
///
/// Uses the SplitMix64 finalizer so that nearby `(seed, tag)` pairs yield
/// statistically unrelated sub-seeds.
pub fn derive_seed(master: u64, stream: RngStream) -> u64 {
    splitmix64(master ^ stream.tag().rotate_left(17))
}

/// Creates a seeded RNG for the given sub-stream.
pub fn rng_for(master: u64, stream: RngStream) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stream))
}

/// Derives the master seed for trial `trial` of a multi-trial experiment
/// from the experiment's base seed.
///
/// This is the seeding contract of the parallel sweep engine
/// (`agossip_analysis::sweep`): every trial's seed is a pure function of
/// `(base_seed, trial)`, so trials can be executed in any order, on any
/// number of worker threads, and still reproduce the exact executions a
/// serial loop would have produced.
///
/// ```
/// use agossip_sim::rng::trial_seed;
///
/// // Deterministic, and distinct across trials and base seeds.
/// assert_eq!(trial_seed(2008, 3), trial_seed(2008, 3));
/// assert_ne!(trial_seed(2008, 3), trial_seed(2008, 4));
/// assert_ne!(trial_seed(2008, 3), trial_seed(2009, 3));
/// ```
pub fn trial_seed(base_seed: u64, trial: u64) -> u64 {
    // Spread consecutive trial indices across the word with a golden-ratio
    // stride before XOR-ing, so trials 0, 1, 2, … flip high bits of the
    // finalizer input rather than only the low ones. Trial 0 reduces to
    // `splitmix64(base_seed)`, which is fine: callers' base seeds are
    // themselves already splitmix-mixed (see
    // `agossip_analysis`'s `ExperimentScale::base_seed_for`).
    splitmix64(base_seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31))
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
///
/// Used for all seed derivation in the workspace (sub-stream seeds here,
/// per-trial seeds in [`trial_seed`]): nearby inputs yield statistically
/// unrelated outputs, and the map is a bijection on `u64`.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derived_seeds_are_distinct_per_stream() {
        let master = 42;
        let a = derive_seed(master, RngStream::Adversary);
        let h = derive_seed(master, RngStream::Harness);
        let p0 = derive_seed(master, RngStream::Process(ProcessId(0)));
        let p1 = derive_seed(master, RngStream::Process(ProcessId(1)));
        let all = [a, h, p0, p1];
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "streams {i} and {j} collided");
            }
        }
    }

    #[test]
    fn derived_seeds_are_deterministic() {
        assert_eq!(
            derive_seed(7, RngStream::Process(ProcessId(3))),
            derive_seed(7, RngStream::Process(ProcessId(3)))
        );
        assert_ne!(
            derive_seed(7, RngStream::Process(ProcessId(3))),
            derive_seed(8, RngStream::Process(ProcessId(3)))
        );
    }

    #[test]
    fn rng_for_reproduces_sequences() {
        let mut r1 = rng_for(123, RngStream::Adversary);
        let mut r2 = rng_for(123, RngStream::Adversary);
        let s1: Vec<u32> = (0..8).map(|_| r1.gen()).collect();
        let s2: Vec<u32> = (0..8).map(|_| r2.gen()).collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_masters_differ() {
        let mut r1 = rng_for(1, RngStream::Harness);
        let mut r2 = rng_for(2, RngStream::Harness);
        let s1: Vec<u32> = (0..8).map(|_| r1.gen()).collect();
        let s2: Vec<u32> = (0..8).map(|_| r2.gen()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn trial_seeds_are_distinct_across_trials_and_bases() {
        let mut seeds: Vec<u64> = (0..64u64).map(|t| trial_seed(2008, t)).collect();
        seeds.extend((0..64u64).map(|b| trial_seed(b, 0)));
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "trial seed collision");
    }

    #[test]
    fn splitmix_is_a_permutation_on_samples() {
        // Not a full permutation check, but distinct inputs should map to
        // distinct outputs on a sample.
        let outs: Vec<u64> = (0..1000u64).map(splitmix64).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
    }
}
