//! Message envelopes and the per-step outbox.
//!
//! Models the "sends zero or more messages" half of a local step (paper,
//! Section 1): the [`Outbox`] collects the messages one process emits during
//! one step, and each becomes an [`Envelope`] — one unit of the message
//! complexity every theorem of the paper bounds.

use crate::process::ProcessId;
use crate::time::TimeStep;

/// A point-to-point message in transit or being delivered.
///
/// The paper counts *point-to-point messages*: if a process sends the same
/// payload to `k` distinct targets in one step, that counts as `k` messages.
/// Every [`Envelope`] is therefore one unit of message complexity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The sender.
    pub from: ProcessId,
    /// The recipient.
    pub to: ProcessId,
    /// The time step at which the message was sent.
    pub sent_at: TimeStep,
    /// The protocol payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Returns the payload-independent metadata of this envelope.
    pub fn meta(&self) -> EnvelopeMeta {
        EnvelopeMeta {
            from: self.from,
            to: self.to,
            sent_at: self.sent_at,
        }
    }
}

/// Metadata describing a message without exposing its payload.
///
/// Adversaries see only this: both the oblivious and the adaptive adversary
/// of the paper may observe *that* a message is sent, and to whom, but the
/// delay decision never depends on the payload bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvelopeMeta {
    /// The sender.
    pub from: ProcessId,
    /// The recipient.
    pub to: ProcessId,
    /// The time step at which the message was sent.
    pub sent_at: TimeStep,
}

/// Collects the messages a process sends during one local step.
///
/// The simulator keeps one `Outbox` alive across steps and drains it after
/// each local step (see [`Outbox::drain`]), so steady-state stepping performs
/// no outbox allocation.
#[derive(Debug, Clone)]
pub struct Outbox<M> {
    sends: Vec<(ProcessId, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { sends: Vec::new() }
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message for `to`.
    pub fn send(&mut self, to: ProcessId, payload: M) {
        self.sends.push((to, payload));
    }

    /// Queues the same payload for every target in `targets`.
    pub fn send_all(&mut self, targets: impl IntoIterator<Item = ProcessId>, payload: M)
    where
        M: Clone,
    {
        for to in targets {
            self.sends.push((to, payload.clone()));
        }
    }

    /// Number of point-to-point messages queued so far.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// True if nothing was sent this step.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }

    /// Consumes the outbox and returns the queued `(target, payload)` pairs.
    pub fn into_sends(self) -> Vec<(ProcessId, M)> {
        self.sends
    }

    /// Drains the queued `(target, payload)` pairs in send order, leaving the
    /// outbox empty but with its capacity intact for reuse.
    pub fn drain(&mut self) -> impl Iterator<Item = (ProcessId, M)> + '_ {
        self.sends.drain(..)
    }

    /// Read-only view of the queued sends.
    pub fn sends(&self) -> &[(ProcessId, M)] {
        &self.sends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_sends() {
        let mut out: Outbox<u32> = Outbox::new();
        assert!(out.is_empty());
        out.send(ProcessId(1), 42);
        out.send(ProcessId(2), 43);
        assert_eq!(out.len(), 2);
        assert!(!out.is_empty());
        let sends = out.into_sends();
        assert_eq!(sends, vec![(ProcessId(1), 42), (ProcessId(2), 43)]);
    }

    #[test]
    fn drain_empties_but_keeps_capacity() {
        let mut out: Outbox<u32> = Outbox::new();
        out.send(ProcessId(0), 1);
        out.send(ProcessId(1), 2);
        let drained: Vec<_> = out.drain().collect();
        assert_eq!(drained, vec![(ProcessId(0), 1), (ProcessId(1), 2)]);
        assert!(out.is_empty());
        assert!(out.sends.capacity() >= 2, "capacity is retained for reuse");
    }

    #[test]
    fn send_all_clones_payload() {
        let mut out: Outbox<String> = Outbox::new();
        out.send_all(ProcessId::all(3), "hi".to_string());
        assert_eq!(out.len(), 3);
        assert!(out.sends().iter().all(|(_, m)| m == "hi"));
    }

    #[test]
    fn envelope_meta_strips_payload() {
        let env = Envelope {
            from: ProcessId(0),
            to: ProcessId(1),
            sent_at: TimeStep(5),
            payload: vec![1u8, 2, 3],
        };
        let meta = env.meta();
        assert_eq!(meta.from, ProcessId(0));
        assert_eq!(meta.to, ProcessId(1));
        assert_eq!(meta.sent_at, TimeStep(5));
    }
}
